"""Flow-level (fluid) modeling of steady-state bulk transfers.

The exact data path decomposes every bulk write into ``chunk_bytes``
pieces, and each piece pays a full RPC round, a portals pull, a fabric
transfer, and a disk controller hold — kernel event count scales as
``clients × (bytes / chunk_bytes)``.  For the steady-state *middle* of a
checkpoint that per-chunk churn buys no fidelity: every chunk sees the
same bottleneck, so the aggregate timeline is captured exactly as well
by a *fluid flow* whose fair-share rate changes only when flows arrive
or depart (burst-buffer and object-store studies model bulk phases the
same way).

:class:`FlowNetwork` implements that: each :class:`Flow` holds a set of
:class:`FluidResource` capacities (sender tx pipe, receiver rx pipe,
disk bandwidth) fractionally, rates are the progressive-filling max-min
fair allocation, and the only scheduled event is the earliest flow
completion — recomputed (with a cheap lazy-cancelled timer) at every
arrival/departure.  ``O(chunks × events)`` collapses to
``O(flows × rate-changes)``.

A flow may weight each resource with a coefficient: a collapsed
representative (symmetric-client collapsing, PR 3) transfers its own
share on its tx pipe (coefficient 1) while the receiver's rx pipe and
disk serve the whole equivalence class (coefficient ``mult``), mirroring
the fabric's asymmetric weighted holds.

The engine is strictly opt-in (``flow=True`` harness kwarg / ``--flow``
CLI flag); ``REPRO_FLOW=0`` force-disables it so the exact chunked path
remains the bit-identical reference, and ``REPRO_FLOW=1`` force-enables
it regardless of the per-run flag.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..simkernel import Environment, Event

__all__ = ["FluidResource", "Flow", "FlowNetwork", "flow_enabled", "fluid_of"]

#: Bytes of slack below which a flow counts as complete.  Float roundoff
#: across advance/recompute cycles is ~1e-7 B at simulation scale; real
#: remainders are at least a byte.
_DONE_TOL = 1e-3

#: Relative capacity slack below which a resource counts as saturated
#: during progressive filling.
_SAT_TOL = 1e-9


def flow_enabled(flag: bool) -> bool:
    """Resolve the per-run ``flow`` flag against the ``REPRO_FLOW`` switch.

    ``REPRO_FLOW=0`` is the kill switch (reference path, always exact),
    ``REPRO_FLOW=1`` force-enables, anything else defers to *flag*.  Read
    at call time so tests can flip the environment without reimports.
    """
    import os

    forced = os.environ.get("REPRO_FLOW", "")
    if forced == "0":
        return False
    if forced == "1":
        return True
    return flag


class FluidResource:
    """A capacity shared fractionally by the flows that traverse it."""

    __slots__ = ("capacity", "name")

    def __init__(self, capacity: float, name: str = "") -> None:
        if capacity <= 0:
            raise ValueError(f"fluid resource {name!r} needs positive capacity")
        self.capacity = float(capacity)
        self.name = name


def fluid_of(pipe) -> FluidResource:
    """The (cached) fluid view of a NIC pipe or any ``.bandwidth`` holder."""
    fluid = getattr(pipe, "_fluid", None)
    if fluid is None:
        fluid = FluidResource(pipe.bandwidth, name=getattr(pipe, "name", ""))
        pipe._fluid = fluid
    return fluid


class Flow:
    """One bulk stream in flight.

    ``nbytes`` / ``remaining`` / ``rate`` are per-share quantities (one
    class member's bytes); each ``(resource, coeff)`` share consumes
    ``coeff × rate`` of that resource's capacity.
    """

    __slots__ = ("nbytes", "remaining", "rate", "shares", "done", "tag",
                 "src", "dst", "wire_bytes", "t_open")

    def __init__(
        self,
        env: Environment,
        nbytes: float,
        shares: Sequence[Tuple[FluidResource, float]],
        tag: str,
        src: Optional[int],
        dst: Optional[int],
        wire_bytes: float,
    ) -> None:
        self.nbytes = nbytes
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.shares = tuple(shares)
        self.done: Event = env.event()
        self.tag = tag
        self.src = src
        self.dst = dst
        self.wire_bytes = wire_bytes
        self.t_open = env._now


class FlowNetwork:
    """Max-min fair fluid flows over shared resources, one env-wide."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._flows: List[Flow] = []
        self._last = env._now
        self._timer = None
        # Counters surfaced through repro.trace.stats.kernel_stats.
        self.flows_opened = 0
        self.flows_active = 0
        self.flows_peak = 0
        self.rate_recomputes = 0
        env._flow_network = self  # type: ignore[attr-defined]

    @classmethod
    def of(cls, env: Environment) -> "FlowNetwork":
        """The environment's flow network, created on first use."""
        existing = getattr(env, "_flow_network", None)
        return existing if existing is not None else cls(env)

    # -- public -------------------------------------------------------------
    def open(
        self,
        nbytes: float,
        shares: Sequence[Tuple[FluidResource, float]],
        tag: str = "flow",
        src: Optional[int] = None,
        dst: Optional[int] = None,
        wire_bytes: Optional[float] = None,
    ) -> Flow:
        """Start a flow; ``yield flow.done`` to wait for its completion.

        All active rates are re-fair-shared immediately; the flow
        completes (its ``done`` event fires) once its per-share bytes
        have drained at whatever rates the fair share gave it over time.
        """
        if nbytes <= 0:
            raise ValueError("flow needs positive nbytes")
        if not shares:
            raise ValueError("flow needs at least one resource share")
        flow = Flow(
            self.env, nbytes, shares, tag, src, dst,
            nbytes if wire_bytes is None else wire_bytes,
        )
        self._advance()
        self._flows.append(flow)
        self.flows_opened += 1
        self.flows_active += 1
        if self.flows_active > self.flows_peak:
            self.flows_peak = self.flows_active
        self._recompute()
        self._reschedule()
        return flow

    # -- internals ----------------------------------------------------------
    def _advance(self) -> None:
        """Drain bytes through every active flow up to the current time."""
        now = self.env._now
        dt = now - self._last
        if dt > 0.0:
            for f in self._flows:
                f.remaining -= f.rate * dt
        self._last = now

    def _recompute(self) -> None:
        """Progressive-filling max-min fair shares with coefficients.

        Raise every unfrozen flow's rate uniformly until some resource
        saturates; freeze the flows crossing it; repeat.  Each round
        freezes at least one flow, so this is ``O(flows × resources)``
        per arrival/departure — independent of chunk count.
        """
        self.rate_recomputes += 1
        flows = self._flows
        if not flows:
            return
        cap = {}
        load = {}
        for f in flows:
            f.rate = 0.0
            for res, coeff in f.shares:
                if res not in cap:
                    cap[res] = res.capacity
                    load[res] = 0.0
                load[res] += coeff
        unfrozen = list(flows)
        while unfrozen:
            inc = min(cap[r] / load[r] for r in cap if load[r] > 0.0)
            saturated = set()
            for r in cap:
                if load[r] > 0.0:
                    cap[r] -= inc * load[r]
                    if cap[r] <= _SAT_TOL * r.capacity:
                        saturated.add(r)
            for f in unfrozen:
                f.rate += inc
            if not saturated:  # pragma: no cover - numerical safety net
                break
            frozen = [f for f in unfrozen
                      if any(res in saturated for res, _ in f.shares)]
            for f in frozen:
                for res, coeff in f.shares:
                    if res in load:
                        load[res] -= coeff
            # Drop saturated resources from the pool entirely: every flow
            # touching them is frozen, and a roundoff residual in their
            # load (1e-16 instead of 0) against their residual cap
            # (-1e-7 instead of 0) would otherwise poison the next
            # round's min with a huge negative increment.
            for r in saturated:
                del cap[r]
                del load[r]
            if not frozen:  # pragma: no cover - numerical safety net
                break
            dead = set(frozen)
            unfrozen = [f for f in unfrozen if f not in dead]

    def _reschedule(self) -> None:
        """Re-arm the single completion timer at the earliest finish."""
        timer = self._timer
        if timer is not None:
            timer.cancel()
            self._timer = None
        if not self._flows:
            return
        dt = min(f.remaining / f.rate for f in self._flows)
        if dt < 0.0:
            dt = 0.0
        timer = self.env.timeout(dt)
        timer.callbacks.append(self._on_timer)
        self._timer = timer

    def _on_timer(self, event) -> None:
        if event is not self._timer:  # pragma: no cover - stale-timer guard
            return
        self._timer = None
        self._advance()
        finished = [f for f in self._flows if f.remaining <= _DONE_TOL]
        if finished:
            self._flows = [f for f in self._flows if f.remaining > _DONE_TOL]
            self.flows_active -= len(finished)
            tracer = self.env.tracer
            for f in finished:
                f.remaining = 0.0
                if tracer is not None:
                    tracer.record(
                        f"xfer-flow:{f.tag}" if f.tag else "xfer-flow",
                        start=f.t_open, kind="xfer",
                        node=f.src, op=f.tag or None, dst=f.dst,
                        bytes=int(f.wire_bytes),
                    )
                f.done.succeed(f)
        self._recompute()
        self._reschedule()
