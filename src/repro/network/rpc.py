"""Request/response messaging on top of the portals layer.

LWFS clients talk to the authentication, authorization, storage, naming,
lock, and journal services through small RPC requests; bulk data *never*
rides in an RPC — it moves through separate server-directed portals
transfers (see :mod:`repro.sim.datamove`).  This mirrors the split in the
paper's Figure 6: "the server receives a small request that identifies the
operation to perform and where to put or get data".

Handlers are generator functions ``handler(ctx, **args)`` that may yield
simulation events (disk I/O, CPU time, nested RPCs) and return the reply
value.  Exceptions raised by a handler are marshalled back and re-raised in
the caller.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional

from ..errors import (
    LinkDown,
    NetworkError,
    NodeFailure,
    RetryExhausted,
    RPCTimeout,
    ServerCrashed,
)
from ..machine.node import Node
from ..simkernel import Environment, Store
from ..simkernel.process import Interrupt
from .fabric import Fabric
from .portals import MemoryDescriptor, PortalsEndpoint, install_portals

__all__ = ["RpcRequest", "RpcReply", "RpcContext", "RpcService", "RpcClient", "service_key"]

#: Portal indices reserved by the RPC layer.
REQUEST_PORTAL = 0
REPLY_PORTAL = 1

#: Default wire size of an RPC request / reply (control messages).
REQUEST_BYTES = 256
REPLY_BYTES = 256


def service_key(name: str) -> int:
    """Stable 32-bit match bits for a service name."""
    return zlib.crc32(name.encode("utf-8"))


@dataclass
class RpcRequest:
    op: str
    args: Dict[str, Any]
    reply_node: int
    req_id: int
    size: int = REQUEST_BYTES
    #: Caller's trace span id; carries span context across the simulated
    #: wire so the server handler links into the client's span tree.
    trace_parent: Optional[int] = None


@dataclass
class RpcReply:
    ok: bool
    value: Any = None
    error: Optional[BaseException] = None
    size: int = REPLY_BYTES


@dataclass
class RpcContext:
    """Execution context handed to every RPC handler."""

    env: Environment
    service: "RpcService"
    request: RpcRequest
    initiator: int  # node id of the caller

    @property
    def node(self) -> Node:
        return self.service.node

    def cpu(self, duration: float) -> Generator:
        """Charge *duration* seconds of this server's CPU (generator)."""
        return self.node.compute(duration)


class RpcService:
    """A named service listening on a node's request portal."""

    def __init__(self, env: Environment, fabric: Fabric, node: Node, name: str) -> None:
        self.env = env
        self.fabric = fabric
        self.node = node
        self.name = name
        self.endpoint: PortalsEndpoint = install_portals(env, fabric, node)
        self.handlers: Dict[str, Callable[..., Generator]] = {}
        self.inbox: Store = self.endpoint.new_eq()
        self._me = self.endpoint.attach(
            REQUEST_PORTAL,
            service_key(name),
            MemoryDescriptor(length=REQUEST_BYTES, eq=self.inbox),
        )
        self._dispatcher = None
        self.requests_served = 0
        #: Handler processes in flight; tracked only while a fault
        #: injector is installed, so it can crash-interrupt them.  A dict
        #: (not a set): crash interrupts iterate it, and insertion order
        #: is deterministic where address-based set order is not.
        self._inflight: dict = {}
        #: Exactly-once layer (fault runs only): requests being executed
        #: and the reply cache for completed ones, both keyed by
        #: ``(reply_node, req_id)``.  Retries reuse the request id, so a
        #: retransmission of a request still executing is absorbed, and
        #: one that already completed gets its cached reply resent
        #: (Lustre-style reply reconstruction) instead of re-executing.
        #: Both are in-memory: a crash wipes them, and a post-reboot
        #: retransmission re-executes against recovered durable state.
        self._executing: dict = {}
        self._replied: dict = {}

    @property
    def addr(self) -> int:
        """Node id clients direct requests to."""
        return self.node.node_id

    def register(self, op: str, handler: Callable[..., Generator]) -> None:
        """Install *handler* for operation *op* (generator function)."""
        if op in self.handlers:
            raise ValueError(f"handler for {op!r} already registered on {self.name!r}")
        self.handlers[op] = handler

    def handler(self, op: str):
        """Decorator form of :meth:`register`."""

        def deco(fn):
            self.register(op, fn)
            return fn

        return deco

    def start(self) -> None:
        """Begin dispatching requests (idempotent; restarts after reboot)."""
        if self._dispatcher is None or not self._dispatcher.is_alive:
            self._dispatcher = self.env.process(self._dispatch_loop(), name=f"svc:{self.name}")

    def _dispatch_loop(self):
        while True:
            if not self.node.alive:
                return
            event = yield self.inbox.get()
            request: RpcRequest = event.payload
            faults = self.env.faults
            if faults is None:
                self.env.process(
                    self._handle(request), name=f"svc:{self.name}:{request.op}:{request.req_id}"
                )
                continue
            key = (request.reply_node, request.req_id)
            if key in self._replied:
                self.env.process(
                    self._resend_reply(request),
                    name=f"svc:{self.name}:{request.op}:{request.req_id}:resend",
                )
                continue
            if key in self._executing:
                self.env.process(
                    self._absorb_duplicate(request),
                    name=f"svc:{self.name}:{request.op}:{request.req_id}:dup",
                )
                continue
            proc = self.env.process(
                self._handle(request), name=f"svc:{self.name}:{request.op}:{request.req_id}"
            )
            self._track(key, proc)
            if faults.duplicate_request(self.name, request.op):
                self.env.process(
                    self._absorb_duplicate(request),
                    name=f"svc:{self.name}:{request.op}:dup",
                )

    def _track(self, key, proc) -> None:
        """Register an in-flight handler for crash interruption and dedup.

        The completion callback also defuses crash interrupts that escape
        the handler (e.g. thrown while it was sending its reply): a
        crashed server's dying work must not crash the simulation.
        """
        self._inflight[proc] = None
        self._executing[key] = proc

        def _done(ev, p=proc, k=key):
            self._inflight.pop(p, None)
            if self._executing.get(k) is p:
                del self._executing[k]
            if not ev._ok and isinstance(ev._value, (Interrupt, ServerCrashed)):
                ev._defused = True

        proc.callbacks.append(_done)

    def _absorb_duplicate(self, request: RpcRequest):
        """A duplicated (retransmitted) request delivery.

        The server's exactly-once layer recognizes the request id and
        discards the duplicate — after paying the unmarshal/dedup host
        work, which is the real cost duplicates impose.  The original
        execution's reply satisfies the caller's (re-armed) match entry.
        """
        try:
            yield from self.node.compute(self.node.msg_overhead_time())
        except NodeFailure:
            pass  # crashed mid-dedup; the caller's timeout handles it

    def _resend_reply(self, request: RpcRequest):
        """Reply reconstruction: a retransmission of a completed request.

        The operation must not run twice (its bulk match entries are
        consumed, its side effects applied), so the cached reply is sent
        again after the unmarshal/dedup host work.
        """
        try:
            yield from self.node.compute(self.node.msg_overhead_time())
        except NodeFailure:
            return  # crashed mid-dedup; the caller's timeout handles it
        reply = self._replied.get((request.reply_node, request.req_id))
        if reply is None or not self.node.alive:
            return
        md = MemoryDescriptor(length=reply.size, payload=reply)
        try:
            yield from self.endpoint.put_inline(md, request.reply_node, REPLY_PORTAL, request.req_id)
        except (NodeFailure, NetworkError):
            pass  # caller gone or no longer waiting; drop it

    def _handle(self, request: RpcRequest):
        # Not itself a generator: picks the handler generator so the
        # tracing-disabled path keeps its exact pre-trace frame count.
        tracer = self.env.tracer
        if tracer is None:
            return self._handle_inner(request)
        return self._handle_traced(tracer, request)

    def _handle_traced(self, tracer, request: RpcRequest):
        # Adopt the caller's span id (carried in the request) as parent and
        # make this the handler process's ambient span, so disk,
        # verify-cache, and bulk-pull spans all nest under it.
        span, prev = tracer.push(
            f"serve:{self.name}.{request.op}", kind="server",
            node=self.node.node_id, service=self.name, op=request.op,
            parent=request.trace_parent,
        )
        try:
            yield from self._handle_inner(request)
        finally:
            tracer.pop(span, prev)

    def _handle_inner(self, request: RpcRequest):
        ctx = RpcContext(env=self.env, service=self, request=request, initiator=request.reply_node)
        reply: RpcReply
        try:
            handler = self.handlers.get(request.op)
            if handler is None:
                raise NetworkError(f"service {self.name!r} has no op {request.op!r}")
            value = yield from handler(ctx, **request.args)
            reply = RpcReply(ok=True, value=value)
        except NodeFailure:
            # Our node (or a dependency) died: no reply will be sent; the
            # client's timeout surfaces the failure.
            return
        except Interrupt:
            # Crash-interrupted by the fault injector: this execution
            # evaporates with the machine — no reply, no reply-cache
            # entry.  The client's timeout drives the retransmission.
            return
        except GeneratorExit:  # environment teardown, not a handler error
            raise
        except BaseException as exc:  # noqa: BLE001 - marshalled to caller
            reply = RpcReply(ok=False, error=exc)

        self.requests_served += 1
        if self.env.faults is not None:
            self._replied[(request.reply_node, request.req_id)] = reply
        if not self.node.alive:
            return  # died before replying; client times out
        md = MemoryDescriptor(length=reply.size, payload=reply)
        try:
            yield from self.endpoint.put_inline(md, request.reply_node, REPLY_PORTAL, request.req_id)
        except NodeFailure:
            pass  # caller died; drop the reply
        except NetworkError:
            # No match entry: the caller gave up (timeout detach, retry in
            # flight) before this reply landed.  Portals semantics drop an
            # unmatched put at the target; so do we.
            pass


class RpcClient:
    """Client-side RPC endpoint living on a node."""

    _req_ids = itertools.count(1)

    def __init__(self, env: Environment, fabric: Fabric, node: Node) -> None:
        self.env = env
        self.fabric = fabric
        self.node = node
        self.endpoint: PortalsEndpoint = install_portals(env, fabric, node)
        self.calls_made = 0

    def call(
        self,
        target_node: int,
        service: str,
        op: str,
        timeout: Optional[float] = None,
        request_size: int = REQUEST_BYTES,
        **args: Any,
    ) -> Generator:
        """Invoke ``service.op(**args)`` on *target_node*.

        A generator: ``result = yield from client.call(...)``.  Raises the
        remote exception on handler failure, :class:`RPCTimeout` if no
        reply arrives within *timeout*, and :class:`NodeFailure` if the
        target is already dead.
        """
        # Returns (not yields) the generator so the tracing-disabled path
        # keeps its exact pre-trace frame count.
        faults = self.env.faults
        if faults is not None and faults.retry is not None:
            return self._call_retry(faults, target_node, service, op, timeout, request_size, args)
        if self.env.tracer is None:
            return self._call_inner(target_node, service, op, timeout, request_size, None, args)
        return self._call_traced(target_node, service, op, timeout, request_size, args)

    #: Failures worth retrying: local timeouts and transport-level faults.
    #: Errors marshalled back from a *running* handler are not — the
    #: operation executed and failed.
    RETRYABLE = (RPCTimeout, NodeFailure, LinkDown, ServerCrashed)

    def _call_retry(
        self,
        faults,
        target_node: int,
        service: str,
        op: str,
        timeout: Optional[float],
        request_size: int,
        args: Dict[str, Any],
    ) -> Generator:
        """The call under a retry policy: exponential backoff with jitter.

        Active only while a fault plan with a :class:`RetryPolicy` is
        installed; each backoff wait draws its jitter from the injector's
        dedicated substream, so faulted runs stay deterministic.
        """
        policy = faults.retry
        if policy.timeout is not None:
            timeout = policy.timeout if timeout is None else min(timeout, policy.timeout)
        delay = policy.base_delay
        # One request id for every attempt: the server's exactly-once
        # layer recognizes retransmissions by it, and a late reply to an
        # earlier attempt satisfies a later attempt's match entry.
        req_id = next(self._req_ids)
        for attempt in range(1, policy.attempts + 1):
            try:
                if self.env.tracer is None:
                    value = yield from self._call_inner(
                        target_node, service, op, timeout, request_size, None, args,
                        req_id=req_id,
                    )
                else:
                    value = yield from self._call_traced(
                        target_node, service, op, timeout, request_size, args,
                        req_id=req_id,
                    )
            except self.RETRYABLE as exc:
                if attempt >= policy.attempts:
                    raise RetryExhausted(
                        f"{service}.{op} on node {target_node} failed after "
                        f"{attempt} attempts: {exc}"
                    ) from exc
                faults.note_retry()
                m = self.env.metrics
                if m is not None:
                    m.count("rpc.retries")
                tracer = self.env.tracer
                t0 = self.env._now if tracer is not None else 0.0
                yield self.env.timeout(min(delay, policy.max_delay) * faults.backoff_scale())
                if tracer is not None:
                    tracer.record(
                        f"retry:{service}.{op}", start=t0, kind="retry",
                        node=self.node.node_id, service=service, op=op, attempt=attempt,
                    )
                delay = min(delay * 2, policy.max_delay)
                continue
            if attempt > 1:
                faults.note_recovered()
            return value

    def _call_traced(
        self,
        target_node: int,
        service: str,
        op: str,
        timeout: Optional[float],
        request_size: int,
        args: Dict[str, Any],
        req_id: Optional[int] = None,
    ) -> Generator:
        tracer = self.env.tracer
        span, prev = tracer.push(
            f"rpc:{service}.{op}", kind="rpc",
            node=self.node.node_id, service=service, op=op, target=target_node,
        )
        try:
            return (yield from self._call_inner(
                target_node, service, op, timeout, request_size, span.span_id, args,
                req_id=req_id,
            ))
        finally:
            tracer.pop(span, prev)

    def _call_inner(
        self,
        target_node: int,
        service: str,
        op: str,
        timeout: Optional[float],
        request_size: int,
        trace_parent: Optional[int],
        args: Dict[str, Any],
        req_id: Optional[int] = None,
    ) -> Generator:
        if req_id is None:
            req_id = next(self._req_ids)
        reply_q: Store = self.endpoint.new_eq()
        reply_md = MemoryDescriptor(length=REPLY_BYTES, eq=reply_q)
        me = self.endpoint.attach(REPLY_PORTAL, req_id, reply_md, use_once=True)

        request = RpcRequest(
            op=op,
            args=args,
            reply_node=self.node.node_id,
            req_id=req_id,
            size=request_size,
            trace_parent=trace_parent,
        )
        faults = self.env.faults
        if faults is not None and timeout is not None and faults.drop_request(service, op):
            # The request is lost on the wire: the client burns its full
            # timeout waiting for a reply that never comes.
            yield self.env.timeout(timeout)
            self.endpoint.detach(REPLY_PORTAL, me)
            m = self.env.metrics
            if m is not None:
                m.count("rpc.timeouts")
            raise RPCTimeout(
                f"{service}.{op} request to node {target_node} dropped (fault injection)"
            )

        send_md = MemoryDescriptor(length=request_size, payload=request)
        try:
            yield from self.endpoint.put_inline(
                send_md, target_node, REQUEST_PORTAL, service_key(service)
            )
        except NodeFailure:
            self.endpoint.detach(REPLY_PORTAL, me)
            raise

        self.calls_made += 1
        get_ev = reply_q.get()
        if timeout is None:
            event = yield get_ev
        else:
            timer = self.env.timeout(timeout)
            yield self.env.any_of([get_ev, timer])
            if not get_ev.triggered:
                self.endpoint.detach(REPLY_PORTAL, me)
                m = self.env.metrics
                if m is not None:
                    m.count("rpc.timeouts")
                raise RPCTimeout(
                    f"{service}.{op} on node {target_node} timed out after {timeout}s"
                )
            event = get_ev.value
            # The reply won the race: retire the losing timer so it doesn't
            # sit in the heap for the next `timeout` simulated seconds.  At
            # scale these stale 30 s timers dominate the queue and tax
            # every heap push.
            timer.cancel()

        reply: RpcReply = event.payload
        if not reply.ok:
            raise reply.error
        return reply.value
