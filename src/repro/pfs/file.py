"""The metadata server's functional core: inodes and the namespace.

This is the state the Lustre-like MDS manages.  In the traditional
architecture *every* create/open/lookup funnels through here — the
centralized chokepoint the paper's Figure 10 measures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import FileExists, NoSuchFile, PFSError
from ..lwfs.naming import split_path
from .striping import StripeLayout

__all__ = ["Inode", "PFSNamespace", "OpenFlags"]


class OpenFlags:
    """POSIX-ish open flags (subset)."""

    RDONLY = 0x0
    WRONLY = 0x1
    RDWR = 0x2
    CREAT = 0x40
    EXCL = 0x80
    TRUNC = 0x200


@dataclass
class Inode:
    """One file's metadata: identity, layout, size."""

    ino: int
    layout: StripeLayout
    size: int = 0
    nlink: int = 1
    owner: str = ""
    attrs: Dict[str, object] = field(default_factory=dict)


class PFSNamespace:
    """Flat-directory-tree namespace mapping paths to inodes."""

    def __init__(self) -> None:
        self._tree: Dict[str, object] = {}  # nested dicts; leaves are Inode
        self._inos = itertools.count(1)
        self.creates = 0
        self.lookups = 0

    # -- internals -----------------------------------------------------------
    def _walk_dir(self, parts: List[str], create_dirs: bool = False) -> Dict[str, object]:
        node = self._tree
        for part in parts:
            child = node.get(part)
            if child is None:
                if not create_dirs:
                    raise NoSuchFile(f"no directory {part!r}")
                child = {}
                node[part] = child
            if isinstance(child, Inode):
                raise PFSError(f"{part!r} is a file, not a directory")
            node = child
        return node

    # -- operations --------------------------------------------------------------
    def create(self, path: str, layout: StripeLayout, owner: str = "") -> Inode:
        self.creates += 1
        parts = split_path(path)
        if not parts:
            raise PFSError("cannot create the root")
        parent = self._walk_dir(parts[:-1], create_dirs=True)
        leaf = parts[-1]
        if leaf in parent:
            raise FileExists(f"{path!r} exists")
        inode = Inode(ino=next(self._inos), layout=layout, owner=owner)
        parent[leaf] = inode
        return inode

    def lookup(self, path: str) -> Inode:
        self.lookups += 1
        parts = split_path(path)
        if not parts:
            raise NoSuchFile("root is not a file")
        parent = self._walk_dir(parts[:-1])
        entry = parent.get(parts[-1])
        if entry is None:
            raise NoSuchFile(f"no file {path!r}")
        if not isinstance(entry, Inode):
            raise PFSError(f"{path!r} is a directory")
        return entry

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except (NoSuchFile, PFSError):
            return False

    def unlink(self, path: str) -> Inode:
        parts = split_path(path)
        parent = self._walk_dir(parts[:-1])
        entry = parent.get(parts[-1])
        if entry is None:
            raise NoSuchFile(f"no file {path!r}")
        if not isinstance(entry, Inode):
            raise PFSError(f"{path!r} is a directory")
        del parent[parts[-1]]
        return entry

    def list_dir(self, path: str) -> List[str]:
        parts = split_path(path)
        node = self._walk_dir(parts)
        return sorted(node)

    def update_size(self, inode: Inode, end_offset: int) -> None:
        if end_offset > inode.size:
            inode.size = end_offset
