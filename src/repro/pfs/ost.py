"""Object storage targets (OSTs) with extent-lock consistency.

Data movement matches LWFS (the OST pulls bulk data over portals — Lustre
really is built on Portals too, §3.2), so the *difference* between the
stacks is exactly what the paper says it is: the consistency machinery.

Each OST object has an extent-lock owner.  While one client streams to an
object, writes take the fast path (pull + stream, fully pipelined).  When
a *different* client touches the same object — the shared-file checkpoint
pattern — the lock must change hands: the previous owner's dirty pages are
flushed (sync), the new writer's data lands with a repositioning seek, and
interleaved partial-stripe extents cost the RAID a read-modify-write
factor.  File-per-process files have one writer per object and never pay
any of this.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from ..errors import NetworkError
from ..lwfs.ids import ContainerID
from ..machine.node import Node
from ..network.portals import MemoryDescriptor
from ..simkernel import Container, Resource
from ..storage.data import piece_len
from ..storage.obd import ObjectStore
from ..sim.servers import DATA_PORTAL, _SimServerBase

__all__ = ["SimOST"]

#: Extra media time for interleaved partial-stripe writes (RAID
#: read-modify-write).  Together with the flush+seek at each ownership
#: switch this reproduces the paper's "roughly half" shared-file result.
RMW_FACTOR = 1.15

#: Wire+handshake latency of one lock revocation callback (client round
#: trip through the lock server).
REVOKE_LATENCY = 0.5e-3


class SimOST(_SimServerBase):
    """One object storage target of the Lustre-like file system."""

    def __init__(self, cluster, node: Node, ost_id: int, raid_bandwidth: Optional[float] = None) -> None:
        self.ost_id = ost_id
        self.service_name = f"ost{ost_id}"
        super().__init__(cluster, node)
        self.store = ObjectStore(name=f"ost{ost_id}")
        self.device = cluster.make_raid(node, name=f"ost{ost_id}-raid", bandwidth=raid_bandwidth)
        self.threads = Resource(cluster.env, capacity=self.config.server_threads)
        self.buffers = Container(
            cluster.env, capacity=self.config.buffer_pool_bytes, init=self.config.buffer_pool_bytes
        )
        #: per-object extent-lock owner (client node id).
        self._owners: Dict[Hashable, int] = {}
        #: distinct writers ever seen per object: once an object has two,
        #: its extents stay fragmented and every write pays the contended
        #: path (lock ping-pong does not heal while writers remain).
        self._writers: Dict[Hashable, set] = {}
        #: per-object serialization during contended (slow-path) writes.
        self._object_locks: Dict[Hashable, Resource] = {}
        self.lock_switches = 0
        self._cid = ContainerID(0)  # all PFS objects share one "container"
        self._register_ops()

    def _object_lock(self, key: Hashable) -> Resource:
        lock = self._object_locks.get(key)
        if lock is None:
            lock = Resource(self.env, capacity=1)
            self._object_locks[key] = lock
        return lock

    def _ensure_object(self, key: Hashable) -> None:
        if not self.store.exists(key):
            self.store.create(key, self._cid)

    def _register_ops(self) -> None:
        costs = self.config.pfs
        reg = self.rpc.register

        def write(ctx, ino, stripe_index, offset, length, data_node, data_bits, client_id,
                  weight=1, shared=False):
            """``weight`` > 1 (symmetric-client collapsing): this request
            stands for *weight* clients' equivalent fragments.  ``shared``
            says whether those clients write the *same* object (shared
            file: the class members contend on the extent lock among
            themselves, so the write is forced onto the contended path
            with *weight* ownership switches) or each their own object
            (file-per-process: sole-writer streaming, scaled bytes)."""
            yield from self.cpu("req", weight * costs.ost_request_cpu)
            key = (ino, stripe_index)
            self._ensure_object(key)
            owner = self._owners.get(key)
            writers = self._writers.setdefault(key, set())
            writers.add(client_id)

            sole = len(writers) == 1 and (owner is None or owner == client_id)
            if sole and not (shared and weight > 1):
                # Sole-writer fast path: identical to the LWFS discipline.
                self._owners[key] = client_id
                tracer = self.env.tracer
                t_wait = self.env._now if tracer is not None else 0.0
                with self.threads.request() as thread:
                    yield thread
                    yield self.buffers.get(length)
                    if tracer is not None and self.env._now > t_wait:
                        tracer.record(
                            "wait:threads", start=t_wait, kind="wait",
                            node=self.node_id, service=self.service_name,
                            resource="threads",
                        )
                    md = MemoryDescriptor(length=length)
                    try:
                        data = yield self.node.portals.get(
                            md, data_node, DATA_PORTAL, data_bits, wire_weight=weight
                        )
                    except BaseException:
                        self.buffers.put(length)
                        raise
                    yield from self.device.write(weight * length)
                    self.store.write(key, offset, data)
                    self.buffers.put(length)
                return {"status": "ok", "written": length}

            # Contended path: extent-lock ownership must change hands.
            # A collapsed class writing back to back switches once per
            # member — except the member that finds the object unowned
            # (``sole``): it streams on the fast path before contention
            # starts, exactly as the first writer does in an exact run.
            switches = weight - 1 if sole else weight
            self.lock_switches += switches
            tracer = self.env.tracer
            t_wait = self.env._now if tracer is not None else 0.0
            with self._object_lock(key).request() as obj_lock:
                yield obj_lock
                # Revocation callback to the previous owner + their flush.
                yield self.env.timeout(switches * REVOKE_LATENCY)
                if tracer is not None:
                    # Queueing for the extent lock plus the revocation round
                    # trip — the serialization the shared-file figure shows.
                    tracer.record(
                        "wait:extent-lock", start=t_wait, kind="wait",
                        node=self.node_id, service=self.service_name,
                        resource="extent-lock",
                    )
                yield from self.device.sync(ops=switches)
                self._owners[key] = client_id
                yield self.buffers.get(length)
                md = MemoryDescriptor(length=length)
                try:
                    data = yield self.node.portals.get(
                        md, data_node, DATA_PORTAL, data_bits, wire_weight=weight
                    )
                except BaseException:
                    self.buffers.put(length)
                    raise
                if sole:
                    # The class's first writer: sequential stream, no RMW.
                    yield from self.device.write(length)
                # Interleaved partial-stripe extents: seek + RMW on media.
                yield from self.device.write(
                    int(switches * length * RMW_FACTOR), seek=True, ops=switches
                )
                self.store.write(key, offset, data)
                self.buffers.put(length)
            return {"status": "ok", "written": length}

        def write_stream(ctx, ino, stripe_index, offset, length, n_chunks, data_node,
                         data_bits, client_id, weight=1):
            """The steady-state middle of a sole-writer (file-per-process)
            write as ONE fluid flow — the PFS mirror of the LWFS server's
            ``write_stream``.  The PFS client only takes this path for
            unshared single-OST layouts, so a contended object here means
            the gating broke; fail loudly rather than mis-model it."""
            yield from self.cpu("req", weight * n_chunks * costs.ost_request_cpu)
            key = (ino, stripe_index)
            self._ensure_object(key)
            owner = self._owners.get(key)
            writers = self._writers.setdefault(key, set())
            writers.add(client_id)
            if len(writers) > 1 or (owner is not None and owner != client_id):
                raise NetworkError(
                    f"write_stream on contended object {key} (owner {owner})"
                )
            self._owners[key] = client_id
            tracer = self.env.tracer
            t_wait = self.env._now if tracer is not None else 0.0
            with self.threads.request() as thread:
                yield thread
                if tracer is not None and self.env._now > t_wait:
                    tracer.record(
                        "wait:threads", start=t_wait, kind="wait",
                        node=self.node_id, service=self.service_name,
                        resource="threads",
                    )
                reserve = min(length, self.config.chunk_bytes)
                yield self.buffers.get(reserve)
                stream = None
                try:
                    stream = yield from self.device.begin_stream(
                        weight * length, ops=weight * n_chunks
                    )
                    md = MemoryDescriptor(length=length)
                    data = yield from self.node.portals.get_stream(
                        md, data_node, DATA_PORTAL, data_bits,
                        wire_weight=weight,
                        extra_shares=((self.device.fluid, weight * stream.scale),),
                        n_msgs=n_chunks,
                    )
                finally:
                    if stream is not None:
                        stream.close()
                    self.buffers.put(reserve)
                self.store.write(key, offset, data)
            return {"status": "ok", "written": length}

        def read(ctx, ino, stripe_index, offset, length, data_node, data_bits, weight=1):
            """``weight`` > 1 (collapsing): the read stands for *weight*
            clients' identical fragments — seeks, disk bytes, CPU, and
            the reply wire all scale accordingly."""
            yield from self.cpu("req", weight * costs.ost_request_cpu)
            key = (ino, stripe_index)
            self._ensure_object(key)
            with self.threads.request() as thread:
                yield thread
                yield self.buffers.get(length)
                try:
                    data = self.store.read(key, offset, length)
                    yield from self.device.read(
                        weight * (piece_len(data) or length), ops=weight
                    )
                    md = MemoryDescriptor(length=length, payload=data)
                    yield self.node.portals.put(
                        md, data_node, DATA_PORTAL, data_bits, wire_weight=weight
                    )
                finally:
                    self.buffers.put(length)
            return {"status": "ok"}

        def sync(ctx, ino=None, weight=1):
            yield from self.device.sync(ops=weight)
            return True

        def truncate(ctx, ino, stripe_index, length):
            yield from self.cpu("req", costs.ost_request_cpu)
            key = (ino, stripe_index)
            if self.store.exists(key):
                yield from self.device.meta_op()
                self.store.truncate(key, length)
            return True

        def destroy(ctx, ino, stripe_index):
            yield from self.cpu("req", costs.ost_request_cpu)
            key = (ino, stripe_index)
            if self.store.exists(key):
                yield from self.device.meta_op()
                released = self.store.remove(key)
                self.device.release_bytes(released)
                self._owners.pop(key, None)
            return True

        reg("write", write)
        reg("write_stream", write_stream)
        reg("read", read)
        reg("sync", sync)
        reg("truncate", truncate)
        reg("destroy", destroy)
