"""POSIX-flavored client of the Lustre-like baseline.

Implements the two checkpoint access styles of §4:

* **file-per-process** — every rank creates its own 1-stripe file,
* **shared file** — one file striped over all OSTs; every rank writes its
  non-overlapping region, and the file system's consistency machinery
  (extent locks, §4's "the file system's consistency and synchronization
  semantics get in the way") extracts its toll at the OSTs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from ..lwfs.ids import TxnID  # noqa: F401 (symmetry with the LWFS client)
from ..machine.node import Node
from ..network.portals import MemoryDescriptor, install_portals
from ..network.rpc import RpcClient
from ..simkernel import Resource
from ..storage.data import Piece, concat_pieces, piece_len, piece_slice
from ..sim.cluster import SimCluster
from ..sim.servers import DATA_PORTAL, next_data_bits
from .file import Inode, OpenFlags
from .striping import StripeLayout

__all__ = ["PFSFileHandle", "SimPFSClient"]


@dataclass
class PFSFileHandle:
    """An open file: inode + layout + the path it came from."""

    path: str
    inode: Inode
    flags: int

    @property
    def layout(self) -> StripeLayout:
        return self.inode.layout


class SimPFSClient:
    """Per-rank client endpoint for the baseline parallel file system."""

    def __init__(self, cluster: SimCluster, node: Node, deployment) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.node = node
        self.deployment = deployment
        self.config = cluster.config
        self.rpc = RpcClient(cluster.env, cluster.fabric, node)
        self.portals = install_portals(cluster.env, cluster.fabric, node)
        self.bytes_written = 0
        self.bytes_read = 0

    # -- helpers ---------------------------------------------------------------
    def _mds(self, op: str, **args):
        return self.rpc.call(
            self.deployment.mds_node_id, "mds", op, timeout=self.config.rpc_timeout, **args
        )

    def _ost(self, ost_id: int, op: str, **args):
        return self.rpc.call(
            self.deployment.ost_node_id(ost_id),
            f"ost{ost_id}",
            op,
            timeout=self.config.rpc_timeout,
            **args,
        )

    def _vfs(self):
        """Client-side kernel path cost per file-system call."""
        return self.node.compute(
            self.cluster.jitter(f"{self.node.name}.vfs", self.config.pfs.client_vfs_cpu)
        )

    # -- POSIX-ish surface (all generators) ------------------------------------------
    def create(self, path: str, stripe_count: int = 1, stripe_size: Optional[int] = None):
        """creat(2): allocate the file at the MDS."""
        yield from self._vfs()
        inode = yield from self._mds(
            "create", path=path, stripe_count=stripe_count, stripe_size=stripe_size
        )
        return PFSFileHandle(path=path, inode=inode, flags=OpenFlags.WRONLY | OpenFlags.CREAT)

    def open(self, path: str, flags: int = OpenFlags.RDONLY):
        yield from self._vfs()
        inode = yield from self._mds("open", path=path, flags=flags)
        return PFSFileHandle(path=path, inode=inode, flags=flags)

    def close(self, fh: PFSFileHandle):
        yield from self._vfs()
        yield from self._mds("close", ino=fh.inode.ino, size=fh.inode.size)
        return True

    def unlink(self, path: str):
        yield from self._vfs()
        inode = yield from self._mds("unlink", path=path)
        layout = inode.layout
        for idx, ost in enumerate(layout.osts):
            yield from self._ost(ost, "destroy", ino=inode.ino, stripe_index=idx)
        return True

    def write(self, fh: PFSFileHandle, offset: int, data: Piece):
        """pwrite(2): stripe-decompose and issue pipelined OST writes."""
        total = piece_len(data)
        window = Resource(self.env, capacity=self.config.pipeline_depth)
        inflight = []
        for frag in fh.layout.map_extent(offset, total):
            piece = piece_slice(data, frag.file_offset - offset, frag.file_offset - offset + frag.length)
            req = window.request()
            yield req
            proc = self.env.process(
                self._write_fragment(fh, frag, piece, window, req),
                name=f"pfswrite:{fh.inode.ino}:{frag.file_offset}",
            )
            inflight.append(proc)
        if inflight:
            yield self.env.all_of(inflight)
        # Fragment writers trap their own failures; surface the first.
        for proc in inflight:
            if isinstance(proc.value, BaseException):
                raise proc.value
        end = offset + total
        if end > fh.inode.size:
            fh.inode.size = end
        self.bytes_written += total
        return total

    def _write_fragment(self, fh, frag, piece, window, window_req):
        try:
            yield from self._vfs()
            ost = fh.layout.osts[frag.ost_index]
            bits = next_data_bits()
            md = MemoryDescriptor(length=frag.length, payload=piece)
            me = self.portals.attach(DATA_PORTAL, bits, md, use_once=True)
            try:
                yield from self._ost(
                    ost,
                    "write",
                    ino=fh.inode.ino,
                    stripe_index=frag.ost_index,
                    offset=frag.object_offset,
                    length=frag.length,
                    data_node=self.node.node_id,
                    data_bits=bits,
                    client_id=self.node.node_id,
                )
            finally:
                self.portals.detach(DATA_PORTAL, me)
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            return exc
        finally:
            window.release(window_req)

    def read(self, fh: PFSFileHandle, offset: int, length: int):
        """pread(2): gather fragments from the OSTs, pipelined."""
        window = Resource(self.env, capacity=self.config.pipeline_depth)
        inflight = []
        for frag in fh.layout.map_extent(offset, length):
            req = window.request()
            yield req
            proc = self.env.process(
                self._read_fragment(fh, frag, window, req),
                name=f"pfsread:{fh.inode.ino}:{frag.file_offset}",
            )
            inflight.append(proc)
        if inflight:
            yield self.env.all_of(inflight)
        pieces: List[Piece] = []
        for proc in inflight:
            if isinstance(proc.value, BaseException):
                raise proc.value
            pieces.append(proc.value)
        self.bytes_read += length
        return concat_pieces(pieces)

    def _read_fragment(self, fh, frag, window, window_req):
        try:
            yield from self._vfs()
            ost = fh.layout.osts[frag.ost_index]
            bits = next_data_bits()
            recv_q = self.portals.new_eq()
            md = MemoryDescriptor(length=frag.length, eq=recv_q)
            me = self.portals.attach(DATA_PORTAL, bits, md, use_once=True)
            try:
                yield from self._ost(
                    ost,
                    "read",
                    ino=fh.inode.ino,
                    stripe_index=frag.ost_index,
                    offset=frag.object_offset,
                    length=frag.length,
                    data_node=self.node.node_id,
                    data_bits=bits,
                )
            finally:
                self.portals.detach(DATA_PORTAL, me)
            return md.payload
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            return exc
        finally:
            window.release(window_req)

    def fsync(self, fh: PFSFileHandle):
        """fsync(2): flush every OST the file stripes over."""
        for idx, ost in enumerate(fh.layout.osts):
            yield from self._ost(ost, "sync", ino=fh.inode.ino)
        yield from self._mds("set_size", path=fh.path, size=fh.inode.size)
        return True

    def stat(self, path: str):
        yield from self._vfs()
        return (yield from self._mds("stat", path=path))
