"""POSIX-flavored client of the Lustre-like baseline.

Implements the two checkpoint access styles of §4:

* **file-per-process** — every rank creates its own 1-stripe file,
* **shared file** — one file striped over all OSTs; every rank writes its
  non-overlapping region, and the file system's consistency machinery
  (extent locks, §4's "the file system's consistency and synchronization
  semantics get in the way") extracts its toll at the OSTs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from ..lwfs.ids import TxnID  # noqa: F401 (symmetry with the LWFS client)
from ..machine.node import Node
from ..network.flow import flow_enabled
from ..network.portals import MemoryDescriptor, install_portals
from ..network.rpc import RpcClient
from ..simkernel import Resource
from ..storage.data import Piece, concat_pieces, piece_len, piece_slice
from ..sim.cluster import SimCluster
from ..sim.servers import DATA_PORTAL, next_data_bits
from .file import Inode, OpenFlags
from .striping import StripeLayout

__all__ = ["PFSFileHandle", "SimPFSClient"]


@dataclass
class PFSFileHandle:
    """An open file: inode + layout + the path it came from."""

    path: str
    inode: Inode
    flags: int
    #: Background MDS process draining a collapsed class's remaining
    #: create units (None outside symmetric-client collapsing).  Its
    #: value, once triggered, is the sim time the class's last create
    #: would have completed in an exact run.
    create_tail: Optional[object] = None

    @property
    def layout(self) -> StripeLayout:
        return self.inode.layout


class SimPFSClient:
    """Per-rank client endpoint for the baseline parallel file system."""

    def __init__(self, cluster: SimCluster, node: Node, deployment) -> None:
        self.cluster = cluster
        self.env = cluster.env
        self.node = node
        self.deployment = deployment
        self.config = cluster.config
        self.rpc = RpcClient(cluster.env, cluster.fabric, node)
        self.portals = install_portals(cluster.env, cluster.fabric, node)
        self.bytes_written = 0
        self.bytes_read = 0

    # -- helpers ---------------------------------------------------------------
    def _mds(self, op: str, **args):
        return self.rpc.call(
            self.deployment.mds_node_id, "mds", op, timeout=self.config.rpc_timeout, **args
        )

    def _ost(self, ost_id: int, op: str, **args):
        return self.rpc.call(
            self.deployment.ost_node_id(ost_id),
            f"ost{ost_id}",
            op,
            timeout=self.config.rpc_timeout,
            **args,
        )

    def _vfs(self):
        """Client-side kernel path cost per file-system call."""
        return self.node.compute(
            self.cluster.jitter(f"{self.node.name}.vfs", self.config.pfs.client_vfs_cpu)
        )

    # -- POSIX-ish surface (all generators) ------------------------------------------
    def create(self, path: str, stripe_count: int = 1, stripe_size: Optional[int] = None,
               weight: int = 1, ost_hint: Optional[int] = None):
        """creat(2): allocate the file at the MDS.

        ``weight`` > 1 (symmetric-client collapsing): this create stands
        for a class of *weight* identical file-per-process creates — the
        MDS charges CPU and journal commits for all of them but allocates
        one inode (the representative's).  ``ost_hint`` pins the layout's
        starting OST so weighted files tile the OSTs the way the class's
        individual files did in the exact run.
        """
        yield from self._vfs()
        inode = yield from self._mds(
            "create", path=path, stripe_count=stripe_count, stripe_size=stripe_size,
            weight=weight, ost_hint=ost_hint,
        )
        tail = getattr(inode, "create_tail", None)
        if tail is not None:
            del inode.create_tail
        return PFSFileHandle(
            path=path, inode=inode, flags=OpenFlags.WRONLY | OpenFlags.CREAT,
            create_tail=tail,
        )

    def open(self, path: str, flags: int = OpenFlags.RDONLY, weight: int = 1):
        yield from self._vfs()
        inode = yield from self._mds("open", path=path, flags=flags, weight=weight)
        return PFSFileHandle(path=path, inode=inode, flags=flags)

    def close(self, fh: PFSFileHandle, weight: int = 1):
        yield from self._vfs()
        yield from self._mds("close", ino=fh.inode.ino, size=fh.inode.size, weight=weight)
        return True

    def unlink(self, path: str):
        yield from self._vfs()
        inode = yield from self._mds("unlink", path=path)
        layout = inode.layout
        for idx, ost in enumerate(layout.osts):
            yield from self._ost(ost, "destroy", ino=inode.ino, stripe_index=idx)
        return True

    def write(self, fh: PFSFileHandle, offset: int, data: Piece,
              weight: int = 1, shared: bool = False):
        """pwrite(2): stripe-decompose and issue pipelined OST writes.

        ``weight`` > 1 (symmetric-client collapsing): each fragment stands
        for *weight* clients' equivalent fragments.  ``shared`` tells the
        OST whether those clients target the *same* object (shared-file
        pattern — they contend on its extent lock) or each their own
        (file-per-process — sole-writer fast path).
        """
        total = piece_len(data)
        if flow_enabled(self.config.flow) and not shared:
            # Flow-level path for sole-writer single-OST (file-per-process)
            # writes: exact first fragment, one fluid stream for the rest.
            frags = list(fh.layout.map_extent(offset, total))
            if len(frags) > 2 and len({f.ost_index for f in frags}) == 1:
                return (yield from self._write_flow(fh, offset, data, weight, total, frags))
        # A representative keeps the whole class's fragments in flight
        # (the class collectively had weight * depth outstanding), so the
        # OSTs its classmates would have kept busy stay busy.
        window = Resource(self.env, capacity=weight * self.config.pipeline_depth)
        inflight = []
        for frag in fh.layout.map_extent(offset, total):
            piece = piece_slice(data, frag.file_offset - offset, frag.file_offset - offset + frag.length)
            req = window.request()
            yield req
            proc = self.env.process(
                self._write_fragment(fh, frag, piece, window, req, weight, shared),
                name=f"pfswrite:{fh.inode.ino}:{frag.file_offset}",
            )
            inflight.append(proc)
        if inflight:
            yield self.env.all_of(inflight)
        # Fragment writers trap their own failures; surface the first.
        for proc in inflight:
            if isinstance(proc.value, BaseException):
                raise proc.value
        end = offset + total
        if end > fh.inode.size:
            fh.inode.size = end
        self.bytes_written += total
        return total

    def _write_flow(self, fh, offset, data, weight, total, frags):
        """Flow-level file-per-process write.

        The first fragment pays the exact chunked path (VFS call, OST
        RPC, extent-lock claim, per-fragment disk write); the remaining
        fragments go through one ``write_stream`` RPC — a single writev-
        style call whose bulk pull rides a fluid flow at the OST.
        """
        first = frags[0]
        piece = piece_slice(data, 0, first.length)
        yield from self._vfs()
        ost = fh.layout.osts[first.ost_index]
        bits = next_data_bits()
        md = MemoryDescriptor(length=first.length, payload=piece)
        me = self.portals.attach(DATA_PORTAL, bits, md, use_once=self.env.faults is None)
        try:
            yield from self._ost(
                ost, "write",
                ino=fh.inode.ino, stripe_index=first.ost_index,
                offset=first.object_offset, length=first.length,
                data_node=self.node.node_id, data_bits=bits,
                client_id=self.node.node_id, weight=weight, shared=False,
            )
        finally:
            self.portals.detach(DATA_PORTAL, me)

        rest = piece_slice(data, first.length, total)
        length = total - first.length
        yield from self._vfs()
        bits = next_data_bits()
        md = MemoryDescriptor(length=length, payload=rest)
        me = self.portals.attach(DATA_PORTAL, bits, md, use_once=self.env.faults is None)
        try:
            yield from self._ost(
                ost, "write_stream",
                ino=fh.inode.ino, stripe_index=first.ost_index,
                offset=frags[1].object_offset, length=length,
                n_chunks=len(frags) - 1,
                data_node=self.node.node_id, data_bits=bits,
                client_id=self.node.node_id, weight=weight,
            )
        finally:
            self.portals.detach(DATA_PORTAL, me)
        end = offset + total
        if end > fh.inode.size:
            fh.inode.size = end
        self.bytes_written += total
        return total

    def _write_fragment(self, fh, frag, piece, window, window_req, weight=1, shared=False):
        try:
            yield from self._vfs()
            ost = fh.layout.osts[frag.ost_index]
            bits = next_data_bits()
            md = MemoryDescriptor(length=frag.length, payload=piece)
            me = self.portals.attach(DATA_PORTAL, bits, md, use_once=self.env.faults is None)
            try:
                yield from self._ost(
                    ost,
                    "write",
                    ino=fh.inode.ino,
                    stripe_index=frag.ost_index,
                    offset=frag.object_offset,
                    length=frag.length,
                    data_node=self.node.node_id,
                    data_bits=bits,
                    client_id=self.node.node_id,
                    weight=weight,
                    shared=shared,
                )
            finally:
                self.portals.detach(DATA_PORTAL, me)
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            return exc
        finally:
            window.release(window_req)

    def read(self, fh: PFSFileHandle, offset: int, length: int, weight: int = 1):
        """pread(2): gather fragments from the OSTs, pipelined.

        ``weight`` > 1 (symmetric-client collapsing): each fragment read
        stands for *weight* clients' identical reads.
        """
        window = Resource(self.env, capacity=weight * self.config.pipeline_depth)
        inflight = []
        for frag in fh.layout.map_extent(offset, length):
            req = window.request()
            yield req
            proc = self.env.process(
                self._read_fragment(fh, frag, window, req, weight),
                name=f"pfsread:{fh.inode.ino}:{frag.file_offset}",
            )
            inflight.append(proc)
        if inflight:
            yield self.env.all_of(inflight)
        pieces: List[Piece] = []
        for proc in inflight:
            if isinstance(proc.value, BaseException):
                raise proc.value
            pieces.append(proc.value)
        self.bytes_read += length
        return concat_pieces(pieces)

    def _read_fragment(self, fh, frag, window, window_req, weight=1):
        try:
            yield from self._vfs()
            ost = fh.layout.osts[frag.ost_index]
            bits = next_data_bits()
            recv_q = self.portals.new_eq()
            md = MemoryDescriptor(length=frag.length, eq=recv_q)
            me = self.portals.attach(DATA_PORTAL, bits, md, use_once=self.env.faults is None)
            try:
                yield from self._ost(
                    ost,
                    "read",
                    ino=fh.inode.ino,
                    stripe_index=frag.ost_index,
                    offset=frag.object_offset,
                    length=frag.length,
                    data_node=self.node.node_id,
                    data_bits=bits,
                    weight=weight,
                )
            finally:
                self.portals.detach(DATA_PORTAL, me)
            return md.payload
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            return exc
        finally:
            window.release(window_req)

    def fsync(self, fh: PFSFileHandle, weight: int = 1):
        """fsync(2): flush every OST the file stripes over.

        One rank's fsync visits the OSTs serially; *weight* collapsed
        ranks' serial loops overlap each other across OSTs, so the
        representative fans the weighted syncs out concurrently — each
        OST still serializes its ``weight`` flushes on the device, but
        the wall time is the per-OST drain, not the sum over OSTs.
        """
        if weight > 1 and len(fh.layout.osts) > 1:
            procs = [
                self.env.process(
                    self._fsync_ost(ost, fh.inode.ino, weight),
                    name=f"pfsfsync:{fh.inode.ino}:{ost}",
                )
                for ost in fh.layout.osts
            ]
            yield self.env.all_of(procs)
            for proc in procs:
                if isinstance(proc.value, BaseException):
                    raise proc.value
        else:
            for idx, ost in enumerate(fh.layout.osts):
                yield from self._ost(ost, "sync", ino=fh.inode.ino, weight=weight)
        yield from self._mds("set_size", path=fh.path, size=fh.inode.size, weight=weight)
        return True

    def _fsync_ost(self, ost: int, ino: int, weight: int):
        try:
            yield from self._ost(ost, "sync", ino=ino, weight=weight)
        except BaseException as exc:  # noqa: BLE001 - reported to parent
            return exc

    def stat(self, path: str):
        yield from self._vfs()
        return (yield from self._mds("stat", path=path))
