"""The centralized metadata server of the Lustre-like baseline.

Every create, open, and close is an RPC to this one node; creates also
commit a journal record to the MDS disk.  This serialization is the
bottleneck the paper quantifies in Figure 10: "operations to a
centralized metadata server are inherently unscalable".
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import FileExists, PFSError
from ..machine.node import Node
from ..simkernel import Resource
from ..storage.device import RaidDevice
from .file import Inode, OpenFlags, PFSNamespace
from .striping import StripeLayout

__all__ = ["SimMDS"]

from ..sim.servers import _SimServerBase


class SimMDS(_SimServerBase):
    """Metadata server: namespace + open-state + journaled creates."""

    service_name = "mds"

    def __init__(self, cluster, node: Node, n_osts: int, default_stripe_size: int) -> None:
        super().__init__(cluster, node)
        self.namespace = PFSNamespace()
        self.n_osts = n_osts
        self.default_stripe_size = default_stripe_size
        self.device: RaidDevice = cluster.make_raid(node, name="mds-journal")
        #: metadata ops serialize through the MDS service threads; Lustre's
        #: MDS of this era effectively single-threaded updates per directory.
        self.md_threads = Resource(cluster.env, capacity=1)
        self._next_ost = 0
        self.open_count = 0
        costs = self.config.pfs
        reg = self.rpc.register

        def create(ctx, path, stripe_count=1, stripe_size=None, owner="", weight=1,
                   ost_hint=None):
            """Create + open: allocate the inode and its OST layout.

            ``weight`` > 1 (symmetric-client collapsing): this request
            stands for a class of *weight* file-per-process creates.  In
            the exact run those creates interleave with every other
            class's in the MDS queue, so the class's *first* create
            completes after roughly one queue pass and that member starts
            writing immediately.  We reproduce that: the representative
            pays for ONE create synchronously and returns, while the
            remaining ``weight - 1`` units drain through the MDS as a
            background process (FIFO puts them after every class's first
            unit — the same wave order as the exact run).  The tail
            process rides back on ``inode.create_tail`` so the caller can
            observe when the class's last create would have finished.

            ``ost_hint`` pins the layout's starting OST *without*
            consuming the arrival-order allocator: hinted class
            representatives tile the OSTs deterministically, which
            reproduces the exact run's files-per-OST balance, while
            unhinted creates still draw from the round-robin allocator
            exactly as before.
            """
            yield from self.cpu("lookup", costs.mds_lookup)
            with self.md_threads.request() as slot:
                yield slot
                yield from self.cpu("create", costs.mds_create_cpu)
                # Journal commit for the namespace update (ext3-style).
                yield from self.device.meta_op()
                layout = self._make_layout(stripe_count, stripe_size, ost_hint)
                inode = self.namespace.create(path, layout, owner=owner)
            self.open_count += weight
            if weight > 1:
                inode.create_tail = self.env.process(
                    self._create_tail(weight - 1), name=f"mds-create-tail:{path}"
                )
            return inode

        def open_(ctx, path, flags=OpenFlags.RDONLY, weight=1):
            yield from self.cpu("lookup", weight * costs.mds_lookup)
            with self.md_threads.request() as slot:
                yield slot
                yield from self.cpu("open", weight * costs.mds_open_cpu)
                inode = self.namespace.lookup(path)
            self.open_count += weight
            return inode

        def close(ctx, ino, size, weight=1):
            yield from self.cpu("close", weight * costs.mds_close_cpu)
            # Size update piggybacks on close (Lustre SOM-less behavior).
            return True

        def set_size(ctx, path, size, weight=1):
            yield from self.cpu("setattr", weight * costs.mds_open_cpu)
            inode = self.namespace.lookup(path)
            self.namespace.update_size(inode, size)
            return True

        def stat(ctx, path):
            yield from self.cpu("lookup", costs.mds_lookup)
            return self.namespace.lookup(path)

        def unlink(ctx, path):
            yield from self.cpu("lookup", costs.mds_lookup)
            with self.md_threads.request() as slot:
                yield slot
                yield from self.cpu("unlink", costs.mds_create_cpu)
                yield from self.device.meta_op()
                return self.namespace.unlink(path)

        def list_dir(ctx, path):
            yield from self.cpu("lookup", costs.mds_lookup)
            return self.namespace.list_dir(path)

        reg("create", create)
        reg("open", open_)
        reg("close", close)
        reg("set_size", set_size)
        reg("stat", stat)
        reg("unlink", unlink)
        reg("list_dir", list_dir)

    def _create_tail(self, n_units: int):
        """The rest of a collapsed class's creates, one MDS unit each."""
        costs = self.config.pfs
        for _ in range(n_units):
            yield from self.cpu("lookup", costs.mds_lookup)
            with self.md_threads.request() as slot:
                yield slot
                yield from self.cpu("create", costs.mds_create_cpu)
                yield from self.device.meta_op()
        return self.env.now

    def _make_layout(
        self, stripe_count: int, stripe_size: Optional[int], ost_hint: Optional[int] = None
    ) -> StripeLayout:
        if not 1 <= stripe_count <= self.n_osts:
            raise PFSError(f"stripe_count {stripe_count} outside 1..{self.n_osts}")
        size = stripe_size or self.default_stripe_size
        if ost_hint is not None:
            start = ost_hint % self.n_osts
        else:
            start = self._next_ost
            self._next_ost = (self._next_ost + stripe_count) % self.n_osts
        osts = tuple((start + i) % self.n_osts for i in range(stripe_count))
        return StripeLayout(stripe_size=size, osts=osts)
