"""Deploy the Lustre-like baseline onto a simulated cluster.

Placement mirrors the paper's setup: the MDS on the service node (the
same node LWFS uses for its metadata/authorization services) and OSTs
round-robin across the storage nodes, two per node when the OST count
exceeds the node count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..machine.node import Node
from ..sim.cluster import SimCluster
from .client import SimPFSClient
from .mds import SimMDS
from .ost import SimOST

__all__ = ["PFSDeployment"]


class PFSDeployment:
    """MDS + OSTs, wired and started, plus client factories."""

    def __init__(
        self,
        cluster: SimCluster,
        n_osts: Optional[int] = None,
        default_stripe_size: Optional[int] = None,
    ) -> None:
        self.cluster = cluster
        if not cluster.service_nodes:
            raise ValueError("cluster needs a service node for the MDS")
        if not cluster.io_nodes:
            raise ValueError("cluster needs I/O nodes for the OSTs")
        n = n_osts if n_osts is not None else len(cluster.io_nodes)
        stripe = default_stripe_size or cluster.config.chunk_bytes

        self.mds = SimMDS(cluster, cluster.service_nodes[0], n_osts=n, default_stripe_size=stripe)
        self.osts: List[SimOST] = []
        for ost_id in range(n):
            node = cluster.io_nodes[ost_id % len(cluster.io_nodes)]
            self.osts.append(SimOST(cluster, node, ost_id=ost_id))

        for server in (self.mds, *self.osts):
            server.start()

        self._clients: Dict[int, SimPFSClient] = {}

    @property
    def mds_node_id(self) -> int:
        return self.mds.node_id

    @property
    def n_osts(self) -> int:
        return len(self.osts)

    def ost_node_id(self, ost_id: int) -> int:
        return self.osts[ost_id].node_id

    def client(self, node: Node) -> SimPFSClient:
        existing = self._clients.get(node.node_id)
        if existing is None:
            existing = SimPFSClient(self.cluster, node, self)
            self._clients[node.node_id] = existing
        return existing

    def lock_switches(self) -> int:
        return sum(ost.lock_switches for ost in self.osts)
