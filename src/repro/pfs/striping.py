"""RAID-0 style file striping across OSTs (the Lustre data layout).

A file's byte space is carved into ``stripe_size`` stripes dealt
round-robin across its OSTs.  :meth:`StripeLayout.map_extent` decomposes a
file extent into per-OST-object fragments; property tests check the
decomposition tiles the extent exactly and round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["StripeLayout", "Fragment"]


@dataclass(frozen=True)
class Fragment:
    """One piece of a file extent, landing on a single OST object."""

    ost_index: int  # index into the layout's OST list
    object_offset: int  # byte offset within that OST object
    file_offset: int  # where this fragment sits in the file
    length: int


@dataclass(frozen=True)
class StripeLayout:
    """Which OSTs a file stripes over, and at what granularity.

    ``osts`` are global OST ids (not positions); ``ost_index`` in a
    :class:`Fragment` indexes into this tuple.
    """

    stripe_size: int
    osts: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")
        if not self.osts:
            raise ValueError("layout needs at least one OST")
        if len(set(self.osts)) != len(self.osts):
            raise ValueError("duplicate OSTs in layout")

    @property
    def stripe_count(self) -> int:
        return len(self.osts)

    # -- address mapping -------------------------------------------------------
    def locate(self, file_offset: int) -> Tuple[int, int]:
        """Map a file offset to (ost_index, object_offset)."""
        if file_offset < 0:
            raise ValueError("negative file offset")
        stripe = file_offset // self.stripe_size
        within = file_offset % self.stripe_size
        ost_index = stripe % self.stripe_count
        object_offset = (stripe // self.stripe_count) * self.stripe_size + within
        return ost_index, object_offset

    def file_offset_of(self, ost_index: int, object_offset: int) -> int:
        """Inverse of :meth:`locate`."""
        if not 0 <= ost_index < self.stripe_count:
            raise ValueError(f"ost_index {ost_index} outside layout")
        if object_offset < 0:
            raise ValueError("negative object offset")
        round_ = object_offset // self.stripe_size
        within = object_offset % self.stripe_size
        stripe = round_ * self.stripe_count + ost_index
        return stripe * self.stripe_size + within

    def map_extent(self, offset: int, length: int) -> List[Fragment]:
        """Decompose a file extent into single-stripe fragments."""
        if offset < 0 or length < 0:
            raise ValueError("negative offset/length")
        fragments: List[Fragment] = []
        pos = offset
        end = offset + length
        while pos < end:
            stripe_end = (pos // self.stripe_size + 1) * self.stripe_size
            take = min(end, stripe_end) - pos
            ost_index, object_offset = self.locate(pos)
            fragments.append(
                Fragment(
                    ost_index=ost_index,
                    object_offset=object_offset,
                    file_offset=pos,
                    length=take,
                )
            )
            pos += take
        return fragments

    def object_size_for(self, ost_index: int, file_size: int) -> int:
        """Bytes the OST object holds when the file has *file_size* bytes."""
        if file_size <= 0:
            return 0
        last = file_size - 1
        full_stripes_before = 0
        # Count stripes belonging to ost_index strictly before the stripe of `last`.
        last_stripe = last // self.stripe_size
        complete_rounds, rem = divmod(last_stripe, self.stripe_count)
        n_before = complete_rounds + (1 if ost_index < rem else 0)
        size = n_before * self.stripe_size
        if last_stripe % self.stripe_count == ost_index:
            size = complete_rounds * self.stripe_size + (last % self.stripe_size) + 1
        return size + full_stripes_before
