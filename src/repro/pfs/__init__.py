"""A Lustre-like traditional parallel file system (the paper's baseline)."""

from .client import PFSFileHandle, SimPFSClient
from .deployment import PFSDeployment
from .file import Inode, OpenFlags, PFSNamespace
from .mds import SimMDS
from .ost import RMW_FACTOR, SimOST
from .striping import Fragment, StripeLayout

__all__ = [
    "StripeLayout",
    "Fragment",
    "Inode",
    "OpenFlags",
    "PFSNamespace",
    "SimMDS",
    "SimOST",
    "RMW_FACTOR",
    "PFSDeployment",
    "SimPFSClient",
    "PFSFileHandle",
]
