"""Partitioned-architecture machine models (paper §2.1, Tables 1-2)."""

from .node import Node
from .presets import (
    PRESETS,
    TABLE1_PAPER,
    TABLE2_PAPER,
    asci_red,
    bluegene_l,
    dev_cluster,
    intel_paragon,
    petaflop,
    red_storm,
    table1_rows,
)
from .spec import CPUSpec, MachineSpec, NICSpec, NodeKind, NodeSpec, OSKind, StorageSpec
from .topology import Crossbar, Mesh3D, Topology, make_topology

__all__ = [
    "Node",
    "NodeKind",
    "OSKind",
    "NICSpec",
    "CPUSpec",
    "StorageSpec",
    "NodeSpec",
    "MachineSpec",
    "Topology",
    "Crossbar",
    "Mesh3D",
    "make_topology",
    "dev_cluster",
    "red_storm",
    "bluegene_l",
    "asci_red",
    "intel_paragon",
    "petaflop",
    "table1_rows",
    "TABLE1_PAPER",
    "TABLE2_PAPER",
    "PRESETS",
]
