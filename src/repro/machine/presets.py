"""Machine presets for the systems named in the paper.

Table 1 (compute/I/O node counts) and Table 2 (Red Storm performance) are
encoded here, along with the 40-node I/O development cluster the paper's
experiments ran on (§4) and the "theoretical petaflop system" used for the
closing extrapolation.

Calibration note (dev cluster): the paper reports peak checkpoint
throughput of ~1.4-1.5 GB/s with 16 servers, which implies ~90 MB/s of
sustained RAID bandwidth behind each Lustre OST / LWFS storage server; the
Myrinet NICs of that era sustain ~230 MB/s point-to-point.
"""

from __future__ import annotations

from typing import Dict, List

from ..units import GiB, MiB, USEC
from .spec import CPUSpec, MachineSpec, NICSpec, NodeKind, NodeSpec, OSKind, StorageSpec

__all__ = [
    "dev_cluster",
    "red_storm",
    "bluegene_l",
    "asci_red",
    "intel_paragon",
    "petaflop",
    "TABLE1_PAPER",
    "TABLE2_PAPER",
    "table1_rows",
    "PRESETS",
]


#: Table 1 of the paper, verbatim: machine -> (compute nodes, I/O nodes, ratio).
TABLE1_PAPER: Dict[str, tuple] = {
    "SNL Intel Paragon (1990s)": (1840, 32, 58),
    "ASCI Red (1990s)": (4510, 73, 62),
    "Cray Red Storm (2004)": (10368, 256, 41),
    "BlueGene/L (2005)": (65536, 1024, 64),
}

#: Table 2 of the paper (Red Storm communication and I/O performance).
TABLE2_PAPER: Dict[str, object] = {
    "io_node_topology": "8x16 mesh (per end)",
    "aggregate_io_bw_bytes": 50 * GiB,
    "io_node_raid_bw_bytes": 400 * MiB,
    "mpi_latency_1hop_s": 2.0 * USEC,
    "mpi_latency_max_s": 5.0 * USEC,
    "link_bw_bytes": 6 * GiB,
}


def _lightweight_cpu() -> CPUSpec:
    return CPUSpec(cores=2, msg_overhead=0.5 * USEC)


def _linux_cpu() -> CPUSpec:
    return CPUSpec(cores=2, msg_overhead=4.0 * USEC)


def dev_cluster(
    storage_bw: float = 92 * MiB,
    nic_bw: float = 230 * MiB,
    nic_latency: float = 7 * USEC,
) -> MachineSpec:
    """The 40-node Sandia I/O development cluster of §4.

    2-way 2.0 GHz Opteron nodes on Myrinet: 31 compute nodes, 8 storage
    nodes (each hosting up to two OSTs / LWFS storage servers, each server
    backed by its own fibre-channel RAID volume), and 1 combined
    metadata/authorization node.
    """
    nic = NICSpec(bandwidth=nic_bw, latency=nic_latency, rdma=True)
    return MachineSpec(
        name="dev-cluster",
        compute_nodes=31,
        io_nodes=8,
        service_nodes=1,
        compute_spec=NodeSpec(NodeKind.COMPUTE, OSKind.LINUX, nic, _linux_cpu()),
        io_spec=NodeSpec(
            NodeKind.IO,
            OSKind.LINUX,
            nic,
            _linux_cpu(),
            storage=StorageSpec(
                bandwidth=storage_bw,
                seek_time=4e-3,
                sync_time=3e-3,
                meta_op_time=240e-6,
                capacity=512 * GiB,
            ),
        ),
        service_spec=NodeSpec(
            NodeKind.SERVICE,
            OSKind.LINUX,
            nic,
            _linux_cpu(),
            storage=StorageSpec(
                bandwidth=60 * MiB, seek_time=4e-3, sync_time=3e-3, meta_op_time=700e-6
            ),
        ),
        topology="crossbar",
        notes="40x 2-way 2.0GHz Opteron, Myrinet; Lustre OSTs on LSI MetaStor FC RAID",
    )


def red_storm() -> MachineSpec:
    """Cray Red Storm / XT3 at Sandia (Tables 1 and 2)."""
    nic = NICSpec(bandwidth=6 * GiB, latency=2.0 * USEC, rdma=True)
    return MachineSpec(
        name="red-storm",
        compute_nodes=10368,
        io_nodes=256,
        service_nodes=16,
        compute_spec=NodeSpec(NodeKind.COMPUTE, OSKind.LIGHTWEIGHT, nic, _lightweight_cpu()),
        io_spec=NodeSpec(
            NodeKind.IO,
            OSKind.LINUX,
            nic,
            _linux_cpu(),
            storage=StorageSpec(bandwidth=400 * MiB, seek_time=4e-3, sync_time=3e-3),
        ),
        service_spec=NodeSpec(
            NodeKind.SERVICE,
            OSKind.LINUX,
            nic,
            _linux_cpu(),
            storage=StorageSpec(bandwidth=120 * MiB, meta_op_time=700e-6),
        ),
        hop_latency=0.05 * USEC,
        topology="mesh3d",
        notes="Catamount lightweight kernel on compute; Table 2 performance",
    )


def bluegene_l() -> MachineSpec:
    """IBM BlueGene/L at LLNL (Table 1)."""
    nic = NICSpec(bandwidth=350 * MiB, latency=5.0 * USEC, rdma=True)
    return MachineSpec(
        name="bluegene-l",
        compute_nodes=65536,
        io_nodes=1024,
        service_nodes=32,
        compute_spec=NodeSpec(NodeKind.COMPUTE, OSKind.LIGHTWEIGHT, nic, _lightweight_cpu()),
        io_spec=NodeSpec(
            NodeKind.IO,
            OSKind.LINUX,
            nic,
            _linux_cpu(),
            storage=StorageSpec(bandwidth=250 * MiB),
        ),
        service_spec=NodeSpec(
            NodeKind.SERVICE,
            OSKind.LINUX,
            nic,
            _linux_cpu(),
            storage=StorageSpec(bandwidth=120 * MiB, meta_op_time=700e-6),
        ),
        hop_latency=0.1 * USEC,
        topology="mesh3d",
        notes="CNK lightweight kernel on compute nodes",
    )


def asci_red() -> MachineSpec:
    """ASCI Red (Table 1; 1990s-era parameters)."""
    nic = NICSpec(bandwidth=310 * MiB, latency=15 * USEC, rdma=True)
    return MachineSpec(
        name="asci-red",
        compute_nodes=4510,
        io_nodes=73,
        service_nodes=8,
        compute_spec=NodeSpec(NodeKind.COMPUTE, OSKind.LIGHTWEIGHT, nic, _lightweight_cpu()),
        io_spec=NodeSpec(
            NodeKind.IO,
            OSKind.LINUX,
            nic,
            _linux_cpu(),
            storage=StorageSpec(bandwidth=40 * MiB, seek_time=8e-3),
        ),
        service_spec=NodeSpec(
            NodeKind.SERVICE,
            OSKind.LINUX,
            nic,
            _linux_cpu(),
            storage=StorageSpec(bandwidth=120 * MiB, meta_op_time=700e-6),
        ),
        hop_latency=0.2 * USEC,
        topology="mesh3d",
        notes="PUMA/Cougar lightweight kernel heritage",
    )


def intel_paragon() -> MachineSpec:
    """SNL Intel Paragon (Table 1; 1990s-era parameters)."""
    nic = NICSpec(bandwidth=175 * MiB, latency=30 * USEC, rdma=False)
    return MachineSpec(
        name="intel-paragon",
        compute_nodes=1840,
        io_nodes=32,
        service_nodes=4,
        compute_spec=NodeSpec(
            NodeKind.COMPUTE,
            OSKind.LIGHTWEIGHT,
            nic,
            CPUSpec(cores=1, msg_overhead=2 * USEC, byte_overhead=2e-9),
        ),
        io_spec=NodeSpec(
            NodeKind.IO,
            OSKind.LINUX,
            nic,
            CPUSpec(cores=1, msg_overhead=10 * USEC, byte_overhead=2e-9),
            storage=StorageSpec(bandwidth=8 * MiB, seek_time=12e-3),
        ),
        service_spec=NodeSpec(
            NodeKind.SERVICE,
            OSKind.LINUX,
            nic,
            CPUSpec(cores=1, msg_overhead=10 * USEC, byte_overhead=2e-9),
            storage=StorageSpec(bandwidth=30 * MiB, meta_op_time=2e-3),
        ),
        hop_latency=0.3 * USEC,
        topology="mesh3d",
        notes="SUNMOS lightweight kernel era; no RDMA",
    )


def petaflop() -> MachineSpec:
    """The paper's closing thought experiment: 100k compute, 2k I/O nodes."""
    nic = NICSpec(bandwidth=8 * GiB, latency=1.5 * USEC, rdma=True)
    return MachineSpec(
        name="petaflop",
        compute_nodes=100_000,
        io_nodes=2_000,
        service_nodes=64,
        compute_spec=NodeSpec(NodeKind.COMPUTE, OSKind.LIGHTWEIGHT, nic, _lightweight_cpu()),
        io_spec=NodeSpec(
            NodeKind.IO,
            OSKind.LINUX,
            nic,
            _linux_cpu(),
            storage=StorageSpec(bandwidth=500 * MiB),
        ),
        service_spec=NodeSpec(
            NodeKind.SERVICE,
            OSKind.LINUX,
            nic,
            _linux_cpu(),
            storage=StorageSpec(bandwidth=120 * MiB, meta_op_time=700e-6),
        ),
        hop_latency=0.05 * USEC,
        topology="mesh3d",
        notes="hypothetical system from the end of §4",
    )


PRESETS = {
    "dev-cluster": dev_cluster,
    "red-storm": red_storm,
    "bluegene-l": bluegene_l,
    "asci-red": asci_red,
    "intel-paragon": intel_paragon,
    "petaflop": petaflop,
}


def table1_rows() -> List[dict]:
    """Reproduce Table 1 from the presets, alongside the paper's numbers."""
    mapping = {
        "SNL Intel Paragon (1990s)": intel_paragon(),
        "ASCI Red (1990s)": asci_red(),
        "Cray Red Storm (2004)": red_storm(),
        "BlueGene/L (2005)": bluegene_l(),
    }
    rows = []
    for label, (paper_compute, paper_io, paper_ratio) in TABLE1_PAPER.items():
        spec = mapping[label]
        rows.append(
            {
                "machine": label,
                "paper_compute": paper_compute,
                "paper_io": paper_io,
                "paper_ratio": paper_ratio,
                "model_compute": spec.compute_nodes,
                "model_io": spec.io_nodes,
                "model_ratio": round(spec.compute_io_ratio),
            }
        )
    return rows
