"""Runtime node objects instantiated from a :class:`MachineSpec`."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..errors import NodeFailure
from ..simkernel import Environment, Resource
from .spec import NodeKind, NodeSpec, OSKind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..network.nic import NIC
    from ..storage.device import RaidDevice

__all__ = ["Node"]


class Node:
    """A single node of the simulated machine.

    A node owns a CPU (modeled as a multi-slot resource charged for
    protocol processing), a NIC (attached by the fabric), and optionally a
    storage device (I/O nodes).  Nodes can be *killed* for failure-injection
    experiments; a dead node's NIC drops traffic and its servers stop.
    """

    def __init__(self, env: Environment, node_id: int, spec: NodeSpec, name: str = "") -> None:
        self.env = env
        self.node_id = node_id
        self.spec = spec
        self.name = name or f"{spec.kind.value}{node_id}"
        self.cpu = Resource(env, capacity=spec.cpu.cores)
        #: Relative CPU speed.  Sharded runs give each worker a local
        #: replica of the shared service nodes at a fraction of their
        #: capacity (``SimConfig.service_scale``); every protocol cost
        #: charged through :meth:`compute` stretches by ``1 / speed``.
        self.speed = 1.0
        self.alive = True
        self.nic: Optional["NIC"] = None  # attached by the Fabric
        self.storage: Optional["RaidDevice"] = None  # attached by deployment

    # -- convenience -------------------------------------------------------
    @property
    def kind(self) -> NodeKind:
        return self.spec.kind

    @property
    def is_lightweight(self) -> bool:
        return self.spec.os is OSKind.LIGHTWEIGHT

    def check_alive(self) -> None:
        if not self.alive:
            raise NodeFailure(f"node {self.name} is down")

    def kill(self) -> None:
        """Fail the node (failure injection): traffic drops immediately."""
        self.alive = False

    def revive(self) -> None:
        """Bring the node back (reboot).  In-memory runtime state is the
        caller's responsibility to recover (see SimStorageServer.reboot)."""
        self.alive = True

    def compute(self, duration: float):
        """Occupy one CPU core for *duration* seconds (a generator).

        Usage inside a process::

            yield from node.compute(cost)
        """
        if duration <= 0:
            return
        if self.speed != 1.0:
            duration /= self.speed
        with self.cpu.request() as req:
            yield req
            yield self.env.timeout(duration)

    def msg_overhead_time(self) -> float:
        """Host CPU time to process one message send/receive."""
        return self.spec.cpu.msg_overhead

    def copy_overhead_time(self, nbytes: int) -> float:
        """Host CPU time for copying *nbytes* (zero on RDMA-capable NICs)."""
        if self.spec.nic.rdma:
            return 0.0
        return nbytes * self.spec.cpu.byte_overhead

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "up" if self.alive else "DOWN"
        return f"<Node {self.name} ({self.spec.kind.value}, {status})>"
