"""Interconnect topologies: hop counts between nodes.

Only latency depends on hop count in our model (per Table 2: "MPI Latency
2.0 us 1 hop, 5.0 us max"); link bandwidth is modeled at the endpoints.
"""

from __future__ import annotations

import math
from typing import Tuple

__all__ = ["Topology", "Crossbar", "Mesh3D", "make_topology"]


class Topology:
    """Maps a pair of node ids to a hop count."""

    def hops(self, src: int, dst: int) -> int:
        raise NotImplementedError

    def max_hops(self) -> int:
        raise NotImplementedError


class Crossbar(Topology):
    """Uniform single-hop fabric (the dev cluster's Myrinet switch)."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.n_nodes = n_nodes

    def hops(self, src: int, dst: int) -> int:
        return 0 if src == dst else 1

    def max_hops(self) -> int:
        return 1


class Mesh3D(Topology):
    """A 3-D mesh (Red Storm's 27x16x24-style interconnect).

    Node ids are laid out in row-major (x fastest) order.  Hop count is the
    Manhattan distance; this is what makes the "5.0 us max" latency of
    Table 2 emerge from a 2.0 us single-hop latency plus per-hop cost.
    """

    def __init__(self, dims: Tuple[int, int, int]) -> None:
        if any(d <= 0 for d in dims):
            raise ValueError(f"mesh dims must be positive, got {dims}")
        self.dims = dims

    @classmethod
    def fit(cls, n_nodes: int) -> "Mesh3D":
        """Smallest near-cubic mesh holding *n_nodes*."""
        side = max(1, round(n_nodes ** (1.0 / 3.0)))
        dims = [side, side, side]
        i = 0
        while dims[0] * dims[1] * dims[2] < n_nodes:
            dims[i % 3] += 1
            i += 1
        return cls((dims[0], dims[1], dims[2]))

    def coords(self, node_id: int) -> Tuple[int, int, int]:
        nx, ny, nz = self.dims
        if not 0 <= node_id < nx * ny * nz:
            raise ValueError(f"node id {node_id} outside mesh of {nx*ny*nz}")
        x = node_id % nx
        y = (node_id // nx) % ny
        z = node_id // (nx * ny)
        return x, y, z

    def hops(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        sx, sy, sz = self.coords(src)
        dx, dy, dz = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy) + abs(sz - dz)

    def max_hops(self) -> int:
        nx, ny, nz = self.dims
        return (nx - 1) + (ny - 1) + (nz - 1)


def make_topology(name: str, n_nodes: int) -> Topology:
    """Factory used by :class:`~repro.network.fabric.Fabric`."""
    if name == "crossbar":
        return Crossbar(n_nodes)
    if name == "mesh3d":
        return Mesh3D.fit(n_nodes)
    raise ValueError(f"unknown topology {name!r}")
