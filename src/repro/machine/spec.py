"""Declarative machine specifications for the partitioned architecture.

The paper's target machines (Red Storm, BlueGene/L, the Sandia I/O
development cluster) all follow the *partitioned architecture* of Figure 1:
a large compute partition running a lightweight kernel, a much smaller I/O
partition running a heavyweight OS, and a handful of service nodes.  A
:class:`MachineSpec` captures the node counts and per-node-kind performance
characteristics; :mod:`repro.machine.presets` instantiates the specs for the
machines in Tables 1 and 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..units import MiB, USEC

__all__ = ["NodeKind", "OSKind", "NICSpec", "CPUSpec", "StorageSpec", "NodeSpec", "MachineSpec"]


class NodeKind(enum.Enum):
    """Role of a node in the partitioned architecture (Figure 1)."""

    COMPUTE = "compute"
    IO = "io"
    SERVICE = "service"


class OSKind(enum.Enum):
    """Operating system class; determines per-message host overheads.

    Lightweight kernels (Catamount, CNK) have no multitasking or demand
    paging, so their per-message CPU cost is far below a general-purpose
    kernel's.
    """

    LIGHTWEIGHT = "lightweight"
    LINUX = "linux"


@dataclass(frozen=True)
class NICSpec:
    """Network-interface characteristics.

    ``bandwidth`` is the serialization rate of the link attached to the NIC
    (bytes/s, per direction); ``latency`` is the one-hop wire latency in
    seconds.  ``rdma`` marks NICs capable of remote DMA with OS bypass
    (Portals on Myrinet / SeaStar), which removes the host-CPU copy cost
    from bulk transfers.
    """

    bandwidth: float
    latency: float
    rdma: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("NIC bandwidth must be positive")
        if self.latency < 0:
            raise ValueError("NIC latency cannot be negative")


@dataclass(frozen=True)
class CPUSpec:
    """Host-CPU costs for protocol processing.

    ``msg_overhead`` — CPU time consumed to send or receive one message
    (header processing, matching); the lightweight kernel's figure is small.
    ``byte_overhead`` — per-byte CPU cost for non-RDMA transfers (memory
    copies); zero when the NIC does RDMA.
    """

    cores: int = 2
    msg_overhead: float = 1.0 * USEC
    byte_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")


@dataclass(frozen=True)
class StorageSpec:
    """Timing model of a node-attached RAID volume.

    ``bandwidth`` — sustained streaming rate in bytes/s.
    ``seek_time`` — fixed positioning cost charged per non-sequential request.
    ``sync_time`` — cost of flushing the write-back cache (fsync).
    ``meta_op_time`` — cost of a metadata-touching device op (object create,
    remove, attribute update) including its journal write.
    ``capacity`` — usable bytes.
    """

    bandwidth: float
    seek_time: float = 5e-3
    sync_time: float = 4e-3
    meta_op_time: float = 150e-6
    capacity: int = 256 * 1024 * MiB

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("storage bandwidth must be positive")
        if self.capacity <= 0:
            raise ValueError("storage capacity must be positive")


@dataclass(frozen=True)
class NodeSpec:
    """Everything needed to instantiate one node of a given kind."""

    kind: NodeKind
    os: OSKind
    nic: NICSpec
    cpu: CPUSpec = field(default_factory=CPUSpec)
    storage: Optional[StorageSpec] = None

    def with_storage(self, storage: StorageSpec) -> "NodeSpec":
        return replace(self, storage=storage)


@dataclass(frozen=True)
class MachineSpec:
    """A full machine: node counts per kind plus the per-kind specs.

    ``hop_latency`` adds per-hop wire delay for mesh topologies; the
    :class:`~repro.machine.topology.Topology` decides hop counts.
    """

    name: str
    compute_nodes: int
    io_nodes: int
    service_nodes: int
    compute_spec: NodeSpec
    io_spec: NodeSpec
    service_spec: NodeSpec
    hop_latency: float = 0.0
    topology: str = "crossbar"
    notes: str = ""

    def __post_init__(self) -> None:
        for label, count in (
            ("compute_nodes", self.compute_nodes),
            ("io_nodes", self.io_nodes),
            ("service_nodes", self.service_nodes),
        ):
            if count < 0:
                raise ValueError(f"{label} cannot be negative")

    @property
    def total_nodes(self) -> int:
        return self.compute_nodes + self.io_nodes + self.service_nodes

    @property
    def compute_io_ratio(self) -> float:
        """The compute:I/O node ratio reported in Table 1."""
        if self.io_nodes == 0:
            return float("inf")
        return self.compute_nodes / self.io_nodes

    def spec_for(self, kind: NodeKind) -> NodeSpec:
        return {
            NodeKind.COMPUTE: self.compute_spec,
            NodeKind.IO: self.io_spec,
            NodeKind.SERVICE: self.service_spec,
        }[kind]

    def summary(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "compute_nodes": self.compute_nodes,
            "io_nodes": self.io_nodes,
            "service_nodes": self.service_nodes,
            "ratio": self.compute_io_ratio,
            "topology": self.topology,
        }
