"""Lightweight instrumentation for simulation runs.

A :class:`Monitor` accumulates scalar samples tagged with the simulated time
they were taken at; :class:`Tally` is the unweighted variant used for
per-operation latencies.  Both compute summary statistics without retaining
huge sample arrays unless asked to.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = ["Tally", "Monitor", "Counter"]


class Tally:
    """Streaming mean/variance/min/max of unweighted samples (Welford)."""

    def __init__(self, name: str = "", keep_samples: bool = False) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0
        self.samples: Optional[List[float]] = [] if keep_samples else None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.samples is not None:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile; needs ``keep_samples=True``."""
        if self.samples is None:
            raise ValueError(f"Tally {self.name!r} was not keeping samples")
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        rank = (len(ordered) - 1) * q
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return ordered[lo]
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> Dict[str, float]:
        out = {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "total": self.total,
        }
        if self.samples is not None:
            out["p50"] = self.percentile(0.50)
            out["p99"] = self.percentile(0.99)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Tally {self.name!r} n={self.count} mean={self.mean:.6g}>"


class Monitor:
    """Time-weighted level tracker (e.g. queue depth, buffer occupancy)."""

    def __init__(self, env, name: str = "") -> None:
        self.env = env
        self.name = name
        self._level = 0.0
        self._last_time = env.now
        self._area = 0.0
        self.max_level = 0.0
        self._start = env.now

    @property
    def level(self) -> float:
        return self._level

    def set(self, level: float) -> None:
        now = self.env.now
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        self._level = level
        if level > self.max_level:
            self.max_level = level

    def add(self, delta: float) -> None:
        self.set(self._level + delta)

    def time_average(self) -> float:
        now = self.env.now
        elapsed = now - self._start
        if elapsed <= 0:
            # No observation window yet.  Returning the instantaneous level
            # here misreported monitors constructed before the run started
            # and queried at t == start; NaN says "no data", matching
            # Tally.mean's empty-sample convention.
            return math.nan
        area = self._area + self._level * (now - self._last_time)
        return area / elapsed


class Counter:
    """Named event counters (messages sent, cache hits, verifies, ...)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, key: str, amount: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + amount

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def items(self) -> List[Tuple[str, int]]:
        return sorted(self._counts.items())

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def clear(self) -> None:
        self._counts.clear()
