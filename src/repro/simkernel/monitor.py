"""Lightweight instrumentation for simulation runs.

A :class:`Monitor` accumulates scalar samples tagged with the simulated time
they were taken at; :class:`Tally` is the unweighted variant used for
per-operation latencies.  Both compute summary statistics without retaining
huge sample arrays unless asked to.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Dict, List, Optional, Tuple

__all__ = ["Tally", "Monitor", "Counter"]


class Tally:
    """Streaming mean/variance/min/max of samples (Welford).

    Samples default to unit weight.  A weighted observation stands for
    ``weight`` identical samples — collapsed tenant representatives
    record one latency on behalf of their whole equivalence class — and
    updates mean/variance with the closed-form batch merge, so the
    statistics equal those of the expanded sample stream.  The
    ``weight == 1`` path is byte-for-byte the historical arithmetic:
    an unweighted caller's floats are bit-identical to before.
    """

    def __init__(self, name: str = "", keep_samples: bool = False) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0
        self.samples: Optional[List[float]] = [] if keep_samples else None
        #: Parallel per-sample weights; materialized lazily on the first
        #: weighted observation so purely-unweighted tallies keep their
        #: original memory footprint and exact percentile path.
        self._weights: Optional[List[float]] = None

    def observe(self, value: float, weight: int = 1) -> None:
        if weight == 1:
            self.count += 1
            self.total += value
            delta = value - self._mean
            self._mean += delta / self.count
            self._m2 += delta * (value - self._mean)
        else:
            if weight <= 0:
                raise ValueError(f"weight {weight!r} must be positive")
            prior = self.count
            self.count = prior + weight
            self.total += weight * value
            delta = value - self._mean
            # Chan et al. batch merge of `weight` copies of one value
            # (batch mean == value, batch m2 == 0).
            self._mean += delta * weight / self.count
            self._m2 += delta * delta * prior * weight / self.count
            if self.samples is not None and self._weights is None:
                self._weights = [1.0] * len(self.samples)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if self.samples is not None:
            self.samples.append(value)
            if self._weights is not None:
                self._weights.append(float(weight))

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile; needs ``keep_samples=True``.

        *q* is a quantile in ``[0, 1]`` — ``0.999`` for p999.  Values
        outside that range raise :class:`ValueError` (a silent clamp
        would hide a caller passing 99.9 where 0.999 was meant).
        """
        return self.percentiles((q,))[0]

    def percentiles(self, qs) -> List[float]:
        """:meth:`percentile` for several quantiles with a single sort."""
        if self.samples is None:
            raise ValueError(f"Tally {self.name!r} was not keeping samples")
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile {q!r} outside [0, 1]")
        if not self.samples:
            return [math.nan for _ in qs]
        if self._weights is None:
            ordered = sorted(self.samples)
            out: List[float] = []
            for q in qs:
                rank = (len(ordered) - 1) * q
                lo = math.floor(rank)
                hi = math.ceil(rank)
                if lo == hi:
                    out.append(ordered[lo])
                else:
                    frac = rank - lo
                    out.append(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)
            return out
        # Weighted percentiles over the *expanded* stream: a sample of
        # weight w occupies w consecutive positions of the sorted virtual
        # array, so the result equals what observing each copy
        # individually would have produced (and the all-weights-1 case
        # equals the unweighted path above).
        pairs = sorted(zip(self.samples, self._weights))
        cum: List[float] = []
        running = 0.0
        for _, w in pairs:
            running += w
            cum.append(running)
        expanded = running  # == weighted count

        def _at(idx: float) -> float:
            return pairs[bisect_right(cum, idx)][0]

        out = []
        for q in qs:
            rank = (expanded - 1) * q
            lo = math.floor(rank)
            hi = math.ceil(rank)
            if lo == hi:
                out.append(_at(lo))
            else:
                frac = rank - lo
                out.append(_at(lo) * (1.0 - frac) + _at(hi) * frac)
        return out

    def summary(self) -> Dict[str, float]:
        out = {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "total": self.total,
        }
        if self.samples is not None:
            out["p50"], out["p99"], out["p999"] = self.percentiles((0.50, 0.99, 0.999))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Tally {self.name!r} n={self.count} mean={self.mean:.6g}>"


class Monitor:
    """Time-weighted level tracker (e.g. queue depth, buffer occupancy)."""

    def __init__(self, env, name: str = "") -> None:
        self.env = env
        self.name = name
        self._level = 0.0
        self._last_time = env.now
        self._area = 0.0
        self.max_level = 0.0
        self._start = env.now

    @property
    def level(self) -> float:
        return self._level

    def set(self, level: float) -> None:
        now = self.env.now
        # Identical timestamps (several set() calls in one event) add a
        # zero-width rectangle; a clock that appears to run backwards
        # (a monitor wired to a stale environment) must not subtract
        # area, so the width is clamped at zero.
        dt = now - self._last_time
        if dt > 0.0:
            self._area += self._level * dt
        self._last_time = now
        self._level = level
        if level > self.max_level:
            self.max_level = level

    def add(self, delta: float) -> None:
        self.set(self._level + delta)

    def time_average(self) -> float:
        now = self.env.now
        elapsed = now - self._start
        if elapsed <= 0:
            # No observation window yet.  Returning the instantaneous level
            # here misreported monitors constructed before the run started
            # and queried at t == start; NaN says "no data", matching
            # Tally.mean's empty-sample convention.
            return math.nan
        area = self._area + self._level * max(0.0, now - self._last_time)
        return area / elapsed


class Counter:
    """Named event counters (messages sent, cache hits, verifies, ...)."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, key: str, amount: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + amount

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def items(self) -> List[Tuple[str, int]]:
        return sorted(self._counts.items())

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def clear(self) -> None:
        self._counts.clear()
