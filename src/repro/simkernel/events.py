"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic generator-based design (as popularized by
SimPy): simulation *processes* are Python generators that ``yield`` events;
the :class:`~repro.simkernel.core.Environment` advances simulated time by
draining a priority queue of triggered events and resuming the processes
waiting on them.

Everything in this module is deterministic: event ordering ties are broken
by a monotonically increasing sequence number assigned at trigger time.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
]


class _Pending:
    """Sentinel for 'event has no value yet'."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


#: Sentinel stored in :attr:`Event._value` until the event is triggered.
PENDING = _Pending()

#: Scheduling priority for events that must run before same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Event:
    """An event that may happen at some point in simulated time.

    An event goes through three states:

    * *untriggered* — freshly created; may be waited on.
    * *triggered* — :meth:`succeed` or :meth:`fail` was called; the event has
      a value and sits in the environment's queue.
    * *processed* — the environment has invoked all callbacks.

    Callbacks are callables taking the event as their only argument.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_cancelled")

    def __init__(self, env: "Environment") -> None:  # noqa: F821
        self.env = env
        #: list of callbacks, or ``None`` once processed.
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False
        self._cancelled: bool = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has a value (succeeded or failed)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once all callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """``True`` if the event succeeded.  Only meaningful once triggered."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not been triggered yet")
        return self._value

    @property
    def defused(self) -> bool:
        """``True`` if a failure was handled and must not crash the run."""
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event as handled so the environment won't raise."""
        self._defused = True

    @property
    def cancelled(self) -> bool:
        """``True`` if the event was retired before its callbacks ran."""
        return self._cancelled

    def cancel(self) -> bool:
        """Retire a *scheduled* event so its callbacks never run.

        The queue entry stays put — removing it would cost a heap re-sift —
        but the event is tombstoned and silently discarded when it reaches
        the front of the queue.  Used for the losing arm of timeout races
        (e.g. an RPC whose reply arrived before the 30 s timer): without
        cancellation those stale timers pile up in the heap and tax every
        subsequent push.

        Returns ``True`` if the event will now never fire, ``False`` if it
        was already processed (cancelling is then a no-op).  Contract:
        after a successful cancel the caller must drop its references —
        cancelled :class:`Timeout` objects may be recycled by the kernel.
        """
        if self.callbacks is None:
            return False
        if self._cancelled:
            return True
        if self._value is PENDING:
            raise RuntimeError(f"cannot cancel {self!r}: not scheduled yet")
        self._cancelled = True
        self.env._on_cancel()
        return True

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on this event.
        If nothing waits on it and nobody calls :meth:`defuse`, the
        environment raises it out of :meth:`Environment.run`.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._cancelled:
            state = "cancelled"
        elif self.processed:
            state = "processed"
        else:
            state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay of simulated time."""

    __slots__ = ("delay", "at")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        #: Absolute simulated time this timeout is scheduled to fire.
        self.at = env.now + delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self._cancelled:
            return f"<Timeout cancelled at={self.at!r} delay={self.delay!r}>"
        return f"<Timeout at={self.at!r} delay={self.delay!r}>"


class ConditionValue:
    """Result of a condition: an ordered mapping of triggered event values."""

    __slots__ = ("events",)

    def __init__(self, events: list) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(str(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def todict(self) -> dict:
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event that triggers when *evaluate* says it is satisfied."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        evaluate: Callable[[list, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("events belong to different environments")

        # Immediately check already-processed events; subscribe to the rest.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        if not self._events and not self.triggered:
            self.succeed(ConditionValue([]))

    def _populate_value(self, value: ConditionValue) -> None:
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None and event._value is not PENDING:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            if not event._ok:
                event.defuse()
            return
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            # Wait one delta cycle so that same-time events are collected.
            deferred = Event(self.env)
            deferred.callbacks.append(self._collect)
            deferred.succeed()

    def _collect(self, _event: Event) -> None:
        if self._value is not PENDING:
            return
        value = ConditionValue([])
        self._populate_value(value)
        self.succeed(value)

    @staticmethod
    def all_events(events: list, count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: list, count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Condition that triggers once *all* the given events succeed."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once *any* of the given events succeeds."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:  # noqa: F821
        super().__init__(env, Condition.any_events, events)
