"""Simulation processes: generators driven by the event loop."""

from __future__ import annotations

from types import GeneratorType
from typing import Any, Generator, Optional

from .events import PENDING, URGENT, Event

__all__ = ["Process", "Interrupt", "InterruptException"]


class InterruptException(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


#: Alias matching SimPy terminology.
Interrupt = InterruptException


class Process(Event):
    """Wraps a generator and resumes it whenever the yielded event fires.

    A process is itself an event: it triggers with the generator's return
    value when the generator finishes, or fails with the exception that
    escaped the generator.  Other processes can therefore ``yield`` a
    process to join on it.
    """

    __slots__ = ("_generator", "_target", "name", "span")

    def __init__(
        self,
        env: "Environment",  # noqa: F821
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(generator, GeneratorType):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or generator.__name__
        # Ambient trace span: inherit the spawner's, so context follows
        # env.process(...) hand-offs (pipelined writers, bulk transfers).
        spawner = env._active_process
        self.span = spawner.span if spawner is not None else None

        # Kick off the process at the current simulation time.
        init = Event(env)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        env._schedule(init, priority=URGENT)

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits on (``None`` if running)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the wrapped generator has not exited."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a dead process or a process waiting on itself is an
        error.  The interrupt is delivered via an urgent event so it
        preempts same-time scheduled resumptions.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")

        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env._schedule(interrupt_event, priority=URGENT)

    # -- internals ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the value (or exception) of *event*."""
        if self._value is not PENDING:
            # Process already finished (e.g. interrupted after completion
            # was scheduled); ignore stale wakeups.
            if not event._ok:
                event._defused = True
            return

        # Detach from the stale target if an interrupt preempted it.
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass

        # Hot loop: hoist the attribute lookups that would otherwise be
        # repeated for every yield of every process.
        env = self.env
        send = self._generator.send
        throw = self._generator.throw
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env._schedule(self)
                break
            except BaseException as exc:
                self._ok = False
                self._value = exc
                env._schedule(self)
                break

            if not isinstance(next_event, Event):
                exc = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self._ok = False
                self._value = exc
                env._schedule(self)
                break

            if next_event.callbacks is not None:
                # Event still pending or triggered-but-unprocessed: wait.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break

            # Event already processed — feed its value straight back in.
            event = next_event

        env._active_process = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.is_alive else "dead"
        return f"<Process {self.name!r} {state}>"
