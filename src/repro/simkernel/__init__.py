"""A from-scratch discrete-event simulation kernel.

This package is the substrate every timed component of the reproduction
runs on: the network fabric, storage devices, LWFS servers, the Lustre-like
baseline, and the simulated SPMD application ranks.

Quick tour::

    from repro.simkernel import Environment

    env = Environment()

    def worker(env, n):
        for i in range(n):
            yield env.timeout(1.0)
        return n

    proc = env.process(worker(env, 3))
    result = env.run(proc)        # -> 3, env.now == 3.0
"""

from .core import LAZY, EmptySchedule, Environment, StopSimulation
from .events import NORMAL, PENDING, URGENT, AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .monitor import Counter, Monitor, Tally
from .process import Interrupt, InterruptException, Process
from .rand import RandomStreams
from .resources import Container, PriorityResource, Request, Resource, Store

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "LAZY",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Process",
    "Interrupt",
    "InterruptException",
    "Resource",
    "PriorityResource",
    "Request",
    "Store",
    "Container",
    "Tally",
    "Monitor",
    "Counter",
    "RandomStreams",
    "PENDING",
    "URGENT",
    "NORMAL",
]
