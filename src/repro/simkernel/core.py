"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

import heapq
from typing import Any, Generator, Iterable, Optional

from .events import NORMAL, PENDING, AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at an event."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in **seconds** by convention throughout this project.
    Determinism: events scheduled for the same time and priority are
    processed in scheduling order (FIFO), so repeated runs with the same
    seed produce identical traces.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now: float = initial_time
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        #: Total events popped off the queue (perf / determinism probe).
        self.events_processed: int = 0
        self._peak_queue: int = 0
        #: Optional :class:`repro.trace.Tracer`; ``None`` keeps every
        #: instrumentation site down to a single attribute check.
        self.tracer = None

    # -- introspection -----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between events)."""
        return self._active_process

    @property
    def peak_queue_len(self) -> int:
        """Largest event-queue depth seen so far."""
        return max(self._peak_queue, len(self._queue))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        Timeouts dominate the event mix of a simulation, so this is a
        slots-only fast constructor: it fills the :class:`Timeout` fields
        and pushes the queue entry directly instead of going through
        ``Timeout.__init__`` → ``Event.__init__`` → ``_schedule``.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._defused = False
        event.delay = delay
        self._seq = seq = self._seq + 1
        queue = self._queue
        heapq.heappush(queue, (self._now + delay, NORMAL, seq, event))
        if len(queue) > self._peak_queue:
            self._peak_queue = len(queue)
        return event

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new simulation process from *generator*."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once all *events* have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any of *events* has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Insert *event* into the queue ``delay`` seconds from now."""
        self._seq = seq = self._seq + 1
        queue = self._queue
        heapq.heappush(queue, (self._now + delay, priority, seq, event))
        if len(queue) > self._peak_queue:
            self._peak_queue = len(queue)

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when nothing is left to do, and
        re-raises un-defused event failures (crashing the simulation, which
        is what you want for an unhandled error in a background process).
        """
        if not self._queue:
            raise EmptySchedule()
        self._now, _prio, _seq, event = heapq.heappop(self._queue)
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"event failed with non-exception {exc!r}")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        * ``until is None`` — run until the queue is empty.
        * ``until`` is a number — run until that simulated time.
        * ``until`` is an :class:`Event` — run until it is processed and
          return its value (re-raising its exception on failure).
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} lies in the past (now={self._now})")
            until = Event(self)
            until._ok = True
            until._value = None
            # Priority URGENT ensures the stop fires before same-time events.
            self._seq += 1
            heapq.heappush(self._queue, (at, 0, self._seq, until))

        if until is not None:
            if until.callbacks is None:
                # Already processed.
                if until._ok:
                    return until._value
                raise until._value
            until.callbacks.append(_stop_simulation)

        # The drain loop below is `step()` inlined: the per-event method
        # call and attribute lookups are measurable at ~10^5 events/run.
        queue = self._queue
        heappop = heapq.heappop
        processed = self.events_processed
        try:
            while True:
                if not queue:
                    raise EmptySchedule()
                self._now, _prio, _seq, event = heappop(queue)
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(f"event failed with non-exception {exc!r}")
        except StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            raise event._value from None
        except EmptySchedule:
            if until is not None and until._value is not PENDING:
                if until._ok:
                    return until._value
                raise until._value from None
            if until is not None:
                raise RuntimeError(
                    "simulation ran out of events before the 'until' event fired"
                ) from None
            return None
        finally:
            self.events_processed = processed


def _stop_simulation(event: Event) -> None:
    if not event._ok:
        event._defused = True
    raise StopSimulation(event)
