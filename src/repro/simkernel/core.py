"""The simulation environment: clock, event queue, and run loop."""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Generator, Iterable, Optional

from .events import NORMAL, PENDING, AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Environment", "EmptySchedule", "StopSimulation", "LAZY"]

#: When true (default), the kernel runs with its scale-out machinery on:
#: zero-delay events bypass the heap through per-priority FIFO deques
#: (batched same-timestamp scheduling), cancelled :class:`Timeout` objects
#: are recycled through a free list, and the heap is compacted once
#: tombstoned entries dominate it.  Simulated timestamps are bit-identical
#: to the reference path.  Set ``REPRO_KERNEL_LAZY=0`` to force the
#: plain-heap reference path (used by the equivalence tests).  Cancelled
#: events are skipped at pop in *both* modes — cancellation is semantics,
#: not an optimization, so its behavior cannot depend on the flag.
LAZY = os.environ.get("REPRO_KERNEL_LAZY", "1") != "0"

#: Retired Timeout objects kept for reuse per environment.
_POOL_MAX = 1024

#: Compact the heap when at least this many tombstones are pending *and*
#: they outnumber the live entries (amortized O(1) per cancellation).
_COMPACT_MIN = 64


class EmptySchedule(Exception):
    """Raised internally when the event queue runs dry."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at an event."""


class Environment:
    """Execution environment for a discrete-event simulation.

    Time is a float in **seconds** by convention throughout this project.
    Determinism: events scheduled for the same time and priority are
    processed in scheduling order (FIFO), so repeated runs with the same
    seed produce identical traces.

    Internally the schedule is a heap of ``(time, priority, seq, event)``
    tuples plus — in lazy mode — two FIFO deques for zero-delay events
    (one per priority).  A zero-delay event's entry time always equals the
    current clock, and ``seq`` is global and monotonic, so popping the
    tuple-minimum across the three structures reproduces the pure-heap
    order exactly while skipping the O(log n) sift for the dominant class
    of events (every ``succeed()``, process init/finish, interrupt).
    """

    def __init__(self, initial_time: float = 0.0, lazy: Optional[bool] = None) -> None:
        self._now: float = initial_time
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq: int = 0
        self._active_process: Optional[Process] = None
        self._lazy: bool = LAZY if lazy is None else bool(lazy)
        #: FIFO side-queues for zero-delay events (lazy mode only).
        self._imm_urgent: deque = deque()
        self._imm_normal: deque = deque()
        #: Free list of retired Timeout objects (lazy mode only).
        self._timeout_pool: list = []
        #: Tombstoned entries still sitting in the schedule.
        self._cancelled_pending: int = 0
        #: Total events popped off the queue (perf / determinism probe).
        self.events_processed: int = 0
        #: Cancelled events discarded without running callbacks.
        self.events_skipped_cancelled: int = 0
        #: Total :meth:`Event.cancel` calls that tombstoned an event.
        self.events_cancelled: int = 0
        #: Timeout objects served from the free list instead of allocated.
        self.timeouts_recycled: int = 0
        #: Scheduler steps resolved analytically by a steady-state
        #: fast-forward engine (see :mod:`repro.network.flow`) instead of
        #: a full rate recompute over every active flow.
        self.events_fast_forwarded: int = 0
        #: Conservative time-window barriers this environment crossed
        #: when driven as one shard of a multiprocess run
        #: (:mod:`repro.bench.shard`); 0 in single-process runs.
        self.window_barriers: int = 0
        #: Analytic steady-state fast-forward opt-in (the
        #: ``REPRO_FASTFORWARD`` kill switch still wins at point of use).
        self.fastforward: bool = True
        self._peak_queue: int = 0
        #: Optional :class:`repro.trace.Tracer`; ``None`` keeps every
        #: instrumentation site down to a single attribute check.
        self.tracer = None
        #: Optional :class:`repro.faults.FaultInjector`; same contract as
        #: ``tracer`` — ``None`` keeps every fault hook to one attribute
        #: check, so fault-free timelines are bit-identical.
        self.faults = None
        #: Optional :class:`repro.metrics.MetricsRegistry`; same contract
        #: again — ``None`` keeps every metric hook to one attribute
        #: check, and the sampler only *reads* state, so a metered
        #: workload's timeline is bit-identical to an unmetered one.
        self.metrics = None

    # -- introspection -----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (``None`` between events)."""
        return self._active_process

    @property
    def peak_queue_len(self) -> int:
        """Largest *live* event-queue depth seen so far.

        Counts heap plus immediate FIFOs minus tombstoned (cancelled but
        not yet popped/compacted) entries, so lazy cancellation reports
        the same semantic depth as the eager reference path instead of
        inflating the peak with dead weight.
        """
        return max(self._peak_queue, self._qlen() - self._cancelled_pending)

    def _qlen(self) -> int:
        return len(self._queue) + len(self._imm_urgent) + len(self._imm_normal)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        t = self._queue[0][0] if self._queue else float("inf")
        if self._imm_urgent and self._imm_urgent[0][0] < t:
            t = self._imm_urgent[0][0]
        if self._imm_normal and self._imm_normal[0][0] < t:
            t = self._imm_normal[0][0]
        return t

    def quiet_before(self, t: float) -> bool:
        """True when no pending entry is scheduled strictly before *t*.

        The steady-state detector used by the flow fast-forward engine:
        when the control lane is quiet up to ``t`` the clock can jump
        there in one closed-form step without reordering anything.
        Conservative — tombstoned entries count as pending, so a stale
        timer can only ever turn a legal skip into a regular event.
        """
        return self.peek() >= t

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now.

        Timeouts dominate the event mix of a simulation, so this is a
        slots-only fast constructor: it fills the :class:`Timeout` fields
        and pushes the queue entry directly instead of going through
        ``Timeout.__init__`` → ``Event.__init__`` → ``_schedule``.  In
        lazy mode the object may come off the environment's free list of
        cancelled timeouts rather than a fresh allocation.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        pool = self._timeout_pool
        if pool:
            event = pool.pop()
            event.callbacks = []
            event._defused = False
            event._cancelled = False
            self.timeouts_recycled += 1
        else:
            event = Timeout.__new__(Timeout)
            event.env = self
            event.callbacks = []
            event._defused = False
            event._cancelled = False
        event._value = value
        event._ok = True
        event.delay = delay
        event.at = at = self._now + delay
        self._seq = seq = self._seq + 1
        if delay == 0.0 and self._lazy:
            self._imm_normal.append((at, NORMAL, seq, event))
        else:
            heapq.heappush(self._queue, (at, NORMAL, seq, event))
        qlen = self._qlen() - self._cancelled_pending
        if qlen > self._peak_queue:
            self._peak_queue = qlen
        return event

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new simulation process from *generator*."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires once all *events* have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires once any of *events* has succeeded."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Insert *event* into the queue ``delay`` seconds from now."""
        self._seq = seq = self._seq + 1
        if delay == 0.0 and self._lazy:
            entry = (self._now, priority, seq, event)
            if priority == 0:  # URGENT
                self._imm_urgent.append(entry)
            else:
                self._imm_normal.append(entry)
        else:
            heapq.heappush(self._queue, (self._now + delay, priority, seq, event))
        qlen = self._qlen() - self._cancelled_pending
        if qlen > self._peak_queue:
            self._peak_queue = qlen

    def _on_cancel(self) -> None:
        """Bookkeeping for :meth:`Event.cancel` (tombstone accounting)."""
        self.events_cancelled += 1
        self._cancelled_pending += 1
        if (
            self._lazy
            and self._cancelled_pending >= _COMPACT_MIN
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned entries and re-heapify (in place: the run loop
        holds direct references to the queue list and deques)."""
        pool = self._timeout_pool
        skipped = 0
        keep = []
        for entry in self._queue:
            event = entry[3]
            if event._cancelled:
                skipped += 1
                self._retire(event, pool)
            else:
                keep.append(entry)
        heapq.heapify(keep)
        self._queue[:] = keep
        for dq in (self._imm_urgent, self._imm_normal):
            if not dq:
                continue
            live = [entry for entry in dq if not entry[3]._cancelled]
            if len(live) != len(dq):
                for entry in dq:
                    if entry[3]._cancelled:
                        skipped += 1
                        self._retire(entry[3], pool)
                dq.clear()
                dq.extend(live)
        self.events_skipped_cancelled += skipped
        self._cancelled_pending = 0

    def _retire(self, event: Event, pool: list) -> None:
        """Mark a cancelled event dead; recycle Timeouts via the free list."""
        event.callbacks = None
        if self._lazy and type(event) is Timeout and len(pool) < _POOL_MAX:
            event._value = None  # don't pin payloads while pooled
            pool.append(event)

    def _pop_entry(self):
        """Pop the globally-minimum (time, priority, seq, event) entry."""
        queue = self._queue
        imm_u = self._imm_urgent
        imm_n = self._imm_normal
        if imm_u or imm_n:
            best = queue[0] if queue else None
            pick = None
            if imm_u and (best is None or imm_u[0] < best):
                best = imm_u[0]
                pick = imm_u
            if imm_n and (best is None or imm_n[0] < best):
                best = imm_n[0]
                pick = imm_n
            if pick is None:
                return heapq.heappop(queue)
            pick.popleft()
            return best
        if not queue:
            raise EmptySchedule()
        return heapq.heappop(queue)

    def step(self) -> None:
        """Process the next scheduled event.

        Raises :class:`EmptySchedule` when nothing is left to do, and
        re-raises un-defused event failures (crashing the simulation, which
        is what you want for an unhandled error in a background process).
        """
        while True:
            self._now, _prio, _seq, event = self._pop_entry()
            if not event._cancelled:
                break
            self.events_skipped_cancelled += 1
            self._cancelled_pending -= 1
            self._retire(event, self._timeout_pool)
        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            exc = event._value
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(f"event failed with non-exception {exc!r}")

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        * ``until is None`` — run until the queue is empty.
        * ``until`` is a number — run until that simulated time.
        * ``until`` is an :class:`Event` — run until it is processed and
          return its value (re-raising its exception on failure).
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} lies in the past (now={self._now})")
            until = Event(self)
            until._ok = True
            until._value = None
            # Priority URGENT ensures the stop fires before same-time events.
            self._seq += 1
            heapq.heappush(self._queue, (at, 0, self._seq, until))

        if until is not None:
            if until.callbacks is None:
                # Already processed.
                if until._ok:
                    return until._value
                raise until._value
            until.callbacks.append(_stop_simulation)

        # The drain loop below is `step()` inlined: the per-event method
        # call and attribute lookups are measurable at ~10^5 events/run.
        queue = self._queue
        imm_u = self._imm_urgent
        imm_n = self._imm_normal
        pool = self._timeout_pool
        recycle = self._lazy
        heappop = heapq.heappop
        processed = self.events_processed
        try:
            while True:
                if imm_u or imm_n:
                    entry = queue[0] if queue else None
                    pick = None
                    if imm_u and (entry is None or imm_u[0] < entry):
                        entry = imm_u[0]
                        pick = imm_u
                    if imm_n and (entry is None or imm_n[0] < entry):
                        entry = imm_n[0]
                        pick = imm_n
                    if pick is None:
                        entry = heappop(queue)
                    else:
                        pick.popleft()
                    self._now, _prio, _seq, event = entry
                else:
                    if not queue:
                        raise EmptySchedule()
                    self._now, _prio, _seq, event = heappop(queue)
                if event._cancelled:
                    self.events_skipped_cancelled += 1
                    self._cancelled_pending -= 1
                    event.callbacks = None
                    if recycle and type(event) is Timeout and len(pool) < _POOL_MAX:
                        event._value = None
                        pool.append(event)
                    continue
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    exc = event._value
                    if isinstance(exc, BaseException):
                        raise exc
                    raise RuntimeError(f"event failed with non-exception {exc!r}")
        except StopSimulation as stop:
            event = stop.args[0]
            if event._ok:
                return event._value
            raise event._value from None
        except EmptySchedule:
            if until is not None and until._value is not PENDING:
                if until._ok:
                    return until._value
                raise until._value from None
            if until is not None:
                raise RuntimeError(
                    "simulation ran out of events before the 'until' event fired"
                ) from None
            return None
        finally:
            self.events_processed = processed


def _stop_simulation(event: Event) -> None:
    if not event._ok:
        event._defused = True
    raise StopSimulation(event)
