"""Shared-resource primitives built on the event kernel.

These model contention points in the simulated machine: a NIC that can move
one message at a time, a RAID controller, a metadata server's CPU, a pool of
pinned I/O buffers, and mailbox-style message queues.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from .core import Environment
from .events import Event

__all__ = [
    "Request",
    "Resource",
    "PriorityRequest",
    "PriorityResource",
    "Store",
    "Container",
]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so the slot is always released::

        with resource.request() as req:
            yield req
            ... hold the resource ...
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        resource._do_request(self)

    def release(self) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an ungranted request (no-op if already granted)."""
        self.resource._cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.triggered and self._ok:
            self.release()
        else:
            self.cancel()


class Resource:
    """A resource with *capacity* slots granted FIFO."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._users: set = set()
        self._waiting: deque = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of ungranted requests."""
        return len(self._waiting)

    def request(self) -> Request:
        """Claim a slot; the returned event fires when granted."""
        return Request(self)

    def try_acquire(self) -> Optional[Request]:
        """Synchronously claim a slot if one is free and nobody waits.

        Returns an already-granted :class:`Request` (pair with
        :meth:`release`) without putting any event on the queue, or
        ``None`` if the claim would have to wait.  This is the contention
        check behind the network fast paths: an uncontended pipe can be
        held and released without paying event-loop turns.
        """
        if len(self._users) >= self.capacity or self._waiting:
            return None
        request = Request.__new__(Request)
        request.env = self.env
        request.callbacks = None  # already processed: nothing waits on it
        request._value = request
        request._ok = True
        request._defused = False
        request._cancelled = False
        request.resource = self
        self._users.add(request)
        return request

    def release(self, request: Request) -> None:
        """Return a slot previously granted to *request*."""
        if request not in self._users:
            raise RuntimeError(f"{request!r} does not hold {self!r}")
        self._users.discard(request)
        self._grant_next()

    # -- internals ----------------------------------------------------------
    def _do_request(self, request: Request) -> None:
        if len(self._users) < self.capacity:
            self._users.add(request)
            request.succeed(request)
        else:
            self._waiting.append(request)

    def _cancel(self, request: Request) -> None:
        if request in self._users:
            return
        try:
            self._waiting.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            if nxt.triggered:  # cancelled/failed while queued
                continue
            self._users.add(nxt)
            nxt.succeed(nxt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<{type(self).__name__} capacity={self.capacity} "
            f"held={self.count} queued={self.queue_len}>"
        )


class PriorityRequest(Request):
    """Request with a priority (lower value = granted earlier)."""

    __slots__ = ("priority", "_order")

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        self._order = resource._next_order()
        super().__init__(resource)

    def __lt__(self, other: "PriorityRequest") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)


class PriorityResource(Resource):
    """Resource whose waiters are granted in priority order (FIFO per tier)."""

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._waiting: list = []  # heap of PriorityRequest
        self._order_counter = 0

    def _next_order(self) -> int:
        self._order_counter += 1
        return self._order_counter

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _do_request(self, request: Request) -> None:
        if len(self._users) < self.capacity and not self._waiting:
            self._users.add(request)
            request.succeed(request)
        else:
            heapq.heappush(self._waiting, request)

    def _cancel(self, request: Request) -> None:
        if request in self._users:
            return
        try:
            self._waiting.remove(request)
            heapq.heapify(self._waiting)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self._waiting and len(self._users) < self.capacity:
            nxt = heapq.heappop(self._waiting)
            if nxt.triggered:
                continue
            self._users.add(nxt)
            nxt.succeed(nxt)


class Store:
    """FIFO buffer of Python objects with blocking put/get.

    With the default infinite capacity this is a mailbox; with a finite
    capacity it models bounded queues (e.g. an I/O node's request buffer
    that *rejects or delays* bursts, paper §3.2).
    """

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: deque = deque()
        self._getters: deque = deque()
        self._putters: deque = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Insert *item*; the event fires once there is room."""
        event = Event(self.env)
        if len(self.items) < self.capacity:
            self.items.append(item)
            event.succeed()
            self._wake_getters()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: ``False`` if the store is full (reject)."""
        if len(self.items) < self.capacity:
            self.items.append(item)
            self._wake_getters()
            return True
        return False

    def get(self) -> Event:
        """Remove and return the oldest item; event value is the item."""
        event = Event(self.env)
        if self.items:
            event.succeed(self.items.popleft())
            self._admit_putters()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self.items:
            item = self.items.popleft()
            self._admit_putters()
            return True, item
        return False, None

    # -- internals ----------------------------------------------------------
    def _wake_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self.items.popleft())
            self._admit_putters()

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter, item = self._putters.popleft()
            if putter.triggered:
                continue
            self.items.append(item)
            putter.succeed()
            self._wake_getters()


class Container:
    """A continuous quantity (e.g. buffer bytes) with blocking put/get."""

    def __init__(
        self,
        env: Environment,
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = init
        self._getters: deque = deque()  # (event, amount)
        self._putters: deque = deque()  # (event, amount)

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        if amount > self.capacity:
            raise ValueError(f"amount {amount} exceeds capacity {self.capacity}")
        event = Event(self.env)
        self._putters.append((event, amount))
        self._settle()
        return event

    def get(self, amount: float) -> Event:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._getters.append((event, amount))
        self._settle()
        return event

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters:
                event, amount = self._putters[0]
                if event.triggered:
                    self._putters.popleft()
                    progressed = True
                elif self._level + amount <= self.capacity:
                    self._putters.popleft()
                    self._level += amount
                    event.succeed()
                    progressed = True
            if self._getters:
                event, amount = self._getters[0]
                if event.triggered:
                    self._getters.popleft()
                    progressed = True
                elif self._level >= amount:
                    self._getters.popleft()
                    self._level -= amount
                    event.succeed()
                    progressed = True
