"""Deterministic random-number streams for simulation runs.

Every stochastic element of the simulation (per-operation cost jitter,
trial-to-trial variation) draws from a named substream derived from a single
run seed, so runs are reproducible and adding a new consumer of randomness
does not perturb existing streams.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent, named PRNG streams under one master seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the substream called *name*."""
        gen = self._streams.get(name)
        if gen is None:
            sub = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, sub]))
            self._streams[name] = gen
        return gen

    def jitter(self, name: str, mean: float, rel_sigma: float = 0.05) -> float:
        """A positive sample around *mean* with relative spread *rel_sigma*.

        Used for per-operation cost noise.  Truncated at 10% of the mean so a
        pathological draw can never produce a non-positive duration.
        """
        if mean <= 0:
            return mean
        value = self.stream(name).normal(mean, rel_sigma * mean)
        floor = 0.1 * mean
        return value if value > floor else floor

    def uniform(self, name: str, low: float, high: float) -> float:
        return float(self.stream(name).uniform(low, high))

    def integers(self, name: str, low: int, high: int) -> int:
        return int(self.stream(name).integers(low, high))
