"""Typed identifiers used across the LWFS-core.

Identifiers are small frozen dataclasses (hashable, comparable, printable)
rather than raw ints so that a container id can never be confused with an
object id in an API call.  Factories hand out ids from per-type counters;
the simulated deployment namespaces them per run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["ContainerID", "ObjectID", "TxnID", "UserID", "IdFactory"]


@dataclass(frozen=True, order=True)
class ContainerID:
    """Unit of access control: every object belongs to one container."""

    value: int

    def __str__(self) -> str:
        return f"cid:{self.value}"


@dataclass(frozen=True, order=True)
class ObjectID:
    """A storage object.  ``server_hint`` records the creating server so
    higher layers can route I/O without a lookup (LWFS imposes no naming)."""

    value: int
    server_hint: int = field(default=-1, compare=False)

    def __str__(self) -> str:
        return f"oid:{self.value}@{self.server_hint}"


@dataclass(frozen=True, order=True)
class TxnID:
    """A distributed transaction."""

    value: int

    def __str__(self) -> str:
        return f"txn:{self.value}"


@dataclass(frozen=True, order=True)
class UserID:
    """An authenticated principal."""

    name: str

    def __str__(self) -> str:
        return f"uid:{self.name}"


class IdFactory:
    """Monotonic id generators, one stream per id type."""

    def __init__(self, start: int = 1) -> None:
        self._containers = itertools.count(start)
        self._objects = itertools.count(start)
        self._txns = itertools.count(start)

    def container(self) -> ContainerID:
        return ContainerID(next(self._containers))

    def object(self, server_hint: int = -1) -> ObjectID:
        return ObjectID(next(self._objects), server_hint=server_hint)

    def txn(self) -> TxnID:
        return TxnID(next(self._txns))
