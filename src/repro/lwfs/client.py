"""Functional (in-process) LWFS deployment and client facade.

This is the LWFS-core with every wire replaced by a direct call: the same
service objects the simulation deploys onto nodes, assembled in one
process.  Unit tests, the quickstart example, and semantic checks use this
layer; performance experiments use :mod:`repro.sim`, which adds timing
around the *same* service code.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PermissionDenied
from ..storage.data import Piece
from .authn import AuthenticationService, MockKerberos
from .authz import AuthorizationService
from .capabilities import Capability, OpMask
from .credentials import Credential
from .ids import ContainerID, IdFactory, ObjectID, TxnID, UserID
from .locks import LockService
from .naming import NamingService
from .storage_svc import StorageService
from .txn import TxnCoordinator

__all__ = ["LWFSDomain", "LWFSClient"]


@dataclass
class LWFSDomain:
    """A complete in-process LWFS-core: Figure 3 without the network."""

    kerberos: MockKerberos
    authn: AuthenticationService
    authz: AuthorizationService
    servers: List[StorageService]
    naming: NamingService
    locks: LockService
    ids: IdFactory = field(default_factory=IdFactory)

    @classmethod
    def create(
        cls,
        n_servers: int = 4,
        users: Sequence[Tuple[str, str]] = (("alice", "alice-password"),),
        cache_enabled: bool = True,
        clock=None,
        verify_mode: str = "cache",
    ) -> "LWFSDomain":
        """Build a domain with *n_servers* storage servers and *users*.

        ``verify_mode="cache"`` is the LWFS scheme (verify at the issuer,
        cache the result); ``"shared-key"`` is the NASD/T10 alternative
        where every server holds the signing key (§3.1.2).
        """
        if verify_mode not in ("cache", "shared-key"):
            raise ValueError("verify_mode must be 'cache' or 'shared-key'")
        kerberos = MockKerberos()
        for name, password in users:
            kerberos.add_principal(name, password)
        authn = AuthenticationService(kerberos, clock=clock)
        ids = IdFactory()
        authz = AuthorizationService(authn, clock=clock, ids=ids)
        servers = []
        for sid in range(n_servers):
            if verify_mode == "shared-key":
                svc = StorageService(
                    server_id=sid,
                    verifier=None,
                    epoch_hint=authz.epoch,
                    clock=authz.clock,
                )

                def _rotate(key, epoch, _svc=svc):
                    _svc.shared_secret = key
                    _svc.epoch_hint = epoch

                svc.shared_secret = authz.export_shared_key(sid, on_rotate=_rotate)
            else:
                svc = StorageService(
                    server_id=sid,
                    verifier=authz.verify,
                    cache_enabled=cache_enabled,
                    clock=authz.clock,
                )
                authz.register_server(sid, svc.invalidate_cached)
            servers.append(svc)
        return cls(
            kerberos=kerberos,
            authn=authn,
            authz=authz,
            servers=servers,
            naming=NamingService(),
            locks=LockService(),
            ids=ids,
        )

    def add_user(self, name: str, password: str) -> None:
        self.kerberos.add_principal(name, password)

    def server(self, server_id: int) -> StorageService:
        return self.servers[server_id]

    def client(self, principal: str, password: str) -> "LWFSClient":
        """Authenticate *principal* and return a client bound to it."""
        cred = self.authn.get_cred(principal, password)
        return LWFSClient(domain=self, cred=cred)


class LWFSClient:
    """Per-principal facade over the domain's services.

    Keeps a small cache of acquired capabilities keyed by container, and a
    record of which container each object it created lives in — pure
    client-side conveniences; the services never rely on them.
    """

    def __init__(self, domain: LWFSDomain, cred: Credential, auto_refresh: bool = True) -> None:
        self.domain = domain
        self.cred = cred
        self.auto_refresh = auto_refresh
        self.txns = TxnCoordinator(ids=domain.ids)
        self._caps: Dict[ContainerID, Capability] = {}
        self._object_home: Dict[ObjectID, Tuple[ContainerID, int]] = {}
        self._rr = itertools.count()

    # -- identity -------------------------------------------------------------
    @property
    def uid(self) -> UserID:
        return self.cred.uid

    # -- containers and capabilities (Fig. 4a) ---------------------------------
    def create_container(self, acl: Optional[Dict[UserID, OpMask]] = None) -> ContainerID:
        return self.domain.authz.create_container(self.cred, acl)

    def get_caps(self, cid: ContainerID, ops: OpMask = OpMask.ALL) -> Capability:
        """Acquire (and remember) a capability for *ops* on *cid*."""
        cap = self.domain.authz.get_caps(self.cred, cid, ops)
        held = self._caps.get(cid)
        if held is None or (held.ops | ops) == ops:
            self._caps[cid] = cap
        return cap

    def adopt_cap(self, cap: Capability) -> None:
        """Install a capability somebody else transferred to us (delegation)."""
        self._caps[cap.cid] = cap

    def drop_caps(self, cid: ContainerID) -> None:
        self._caps.pop(cid, None)

    def cap_for(self, cid: ContainerID, needed: OpMask) -> Capability:
        cap = self._caps.get(cid)
        if cap is None or not cap.grants(needed):
            raise PermissionDenied(
                f"client holds no capability granting {needed.describe()} on {cid}; "
                "call get_caps() or adopt_cap() first"
            )
        # Automatic refresh of expired capabilities (§5 criticizes NASD
        # for lacking this: "for operations like a checkpoint, with large
        # gaps between file accesses, the cost of re-acquiring expired
        # capabilities is still a problem").  Only capabilities *we*
        # acquired are refreshed — adopted (delegated) ones belong to
        # someone else's policy decision.
        if (
            self.auto_refresh
            and self.domain.authz.clock() > cap.expires_at
            and cap.uid == self.uid
        ):
            cap = self.get_caps(cid, cap.ops)
        return cap

    def chmod(self, cid: ContainerID, acl: Dict[UserID, OpMask]) -> None:
        """Change the container's policy (revokes what the diff removes)."""
        self.domain.authz.set_acl(self.cred, cid, acl)

    # -- object placement ----------------------------------------------------------
    def pick_server(self, server_id: Optional[int] = None) -> int:
        if server_id is not None:
            return server_id
        return next(self._rr) % len(self.domain.servers)

    def _home(self, oid: ObjectID, cap_hint: Optional[Capability]) -> Tuple[ContainerID, int]:
        home = self._object_home.get(oid)
        if home is not None:
            return home
        if oid.server_hint >= 0:
            cid = self.domain.server(oid.server_hint).store.container_of(oid)
            return cid, oid.server_hint
        if cap_hint is not None:
            for sid, svc in enumerate(self.domain.servers):
                if svc.store.exists(oid):
                    return svc.store.container_of(oid), sid
        raise KeyError(f"cannot locate object {oid}")

    # -- object operations ------------------------------------------------------------
    def create_object(
        self,
        cid: ContainerID,
        server_id: Optional[int] = None,
        attrs: Optional[Dict[str, object]] = None,
        txnid: Optional[TxnID] = None,
    ) -> ObjectID:
        cap = self.cap_for(cid, OpMask.CREATE)
        sid = self.pick_server(server_id)
        svc = self.domain.server(sid)
        if txnid is not None:
            self.txns.join(txnid, svc)
        oid = svc.create_object(cap, attrs=attrs, txnid=txnid)
        self._object_home[oid] = (cid, sid)
        return oid

    def remove_object(self, oid: ObjectID, txnid: Optional[TxnID] = None) -> None:
        cid, sid = self._home(oid, None)
        cap = self.cap_for(cid, OpMask.REMOVE)
        svc = self.domain.server(sid)
        if txnid is not None:
            self.txns.join(txnid, svc)
        svc.remove_object(cap, oid, txnid=txnid)
        self._object_home.pop(oid, None)

    def write(self, oid: ObjectID, offset: int, data: Piece, txnid: Optional[TxnID] = None) -> int:
        cid, sid = self._home(oid, None)
        cap = self.cap_for(cid, OpMask.WRITE)
        svc = self.domain.server(sid)
        if txnid is not None:
            self.txns.join(txnid, svc)
        return svc.write(cap, oid, offset, data, txnid=txnid)

    def read(self, oid: ObjectID, offset: int, length: int) -> Piece:
        cid, sid = self._home(oid, None)
        cap = self.cap_for(cid, OpMask.READ)
        return self.domain.server(sid).read(cap, oid, offset, length)

    def get_attrs(self, oid: ObjectID) -> Dict[str, object]:
        cid, sid = self._home(oid, None)
        cap = self.cap_for(cid, OpMask.GETATTR)
        return self.domain.server(sid).get_attrs(cap, oid)

    def set_attr(self, oid: ObjectID, key: str, value: object, txnid: Optional[TxnID] = None) -> None:
        cid, sid = self._home(oid, None)
        cap = self.cap_for(cid, OpMask.SETATTR)
        svc = self.domain.server(sid)
        if txnid is not None:
            self.txns.join(txnid, svc)
        svc.set_attr(cap, oid, key, value, txnid=txnid)

    def list_objects(self, cid: ContainerID) -> List[ObjectID]:
        cap = self.cap_for(cid, OpMask.LIST)
        out: List[ObjectID] = []
        for svc in self.domain.servers:
            out.extend(svc.list_objects(cap, cid))
        return sorted(out)

    # -- naming ---------------------------------------------------------------------------
    def bind(self, path: str, oid: ObjectID, txnid: Optional[TxnID] = None) -> None:
        _cid, sid = self._home(oid, None)
        if txnid is not None:
            self.txns.join(txnid, self.domain.naming)
        self.domain.naming.create_name(path, (oid, sid), txnid=txnid)

    def lookup(self, path: str) -> ObjectID:
        oid, sid = self.domain.naming.lookup(path)
        return oid

    # -- transactions ------------------------------------------------------------------------
    def begin_txn(self) -> TxnID:
        return self.txns.begin()

    def end_txn(self, txnid: TxnID) -> None:
        self.txns.end(txnid)

    def abort_txn(self, txnid: TxnID) -> None:
        self.txns.abort(txnid)
