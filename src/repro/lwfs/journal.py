"""Journals: persistent transaction logs (paper §3.4).

"Journals provide a mechanism to ensure atomicity and durability for
transactions ... a journal exists as a persistent object on the storage
system."  We implement exactly that: a :class:`Journal` appends fixed-form
records into a storage object (via an :class:`~repro.storage.obd.ObjectStore`),
and recovery scans the object to classify in-doubt transactions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from ..errors import TransactionError
from ..storage.data import piece_bytes
from ..storage.obd import ObjectStore
from .ids import TxnID

__all__ = ["JournalRecord", "Journal", "RecoveryOutcome"]

#: Record kinds, in the order a healthy transaction writes them.
KINDS = ("begin", "op", "prepare", "commit", "abort")


@dataclass(frozen=True)
class JournalRecord:
    """One journal entry.  ``payload`` must be JSON-serializable."""

    txn: int  # TxnID value
    seq: int
    kind: str
    payload: Optional[dict] = None

    def encode(self) -> bytes:
        body = json.dumps(
            {"txn": self.txn, "seq": self.seq, "kind": self.kind, "payload": self.payload},
            separators=(",", ":"),
        ).encode("utf-8")
        return len(body).to_bytes(4, "big") + body

    @staticmethod
    def decode_stream(raw: bytes) -> List["JournalRecord"]:
        records: List[JournalRecord] = []
        pos = 0
        while pos + 4 <= len(raw):
            size = int.from_bytes(raw[pos : pos + 4], "big")
            if size == 0 or pos + 4 + size > len(raw):
                break  # torn tail write: recovery stops at the last full record
            body = json.loads(raw[pos + 4 : pos + 4 + size].decode("utf-8"))
            records.append(
                JournalRecord(
                    txn=body["txn"], seq=body["seq"], kind=body["kind"], payload=body["payload"]
                )
            )
            pos += 4 + size
        return records


@dataclass
class RecoveryOutcome:
    """Classification of transactions found in a journal after a crash."""

    committed: List[int]
    aborted: List[int]
    in_doubt: List[int]  # prepared but unresolved: ask the coordinator
    incomplete: List[int]  # never prepared: abort


class Journal:
    """An append-only transaction log stored in an object."""

    def __init__(self, store: ObjectStore, oid: Hashable, cid: Hashable) -> None:
        self.store = store
        self.oid = oid
        if not store.exists(oid):
            store.create(oid, cid, attrs={"journal": True})
        self._tail = store.get_attrs(oid)["size"]
        self._seq = 0
        self.records_written = 0

    # -- writing ----------------------------------------------------------------
    def append(self, txn: TxnID, kind: str, payload: Optional[dict] = None) -> JournalRecord:
        if kind not in KINDS:
            raise TransactionError(f"unknown journal record kind {kind!r}")
        self._seq += 1
        record = JournalRecord(txn=txn.value, seq=self._seq, kind=kind, payload=payload)
        blob = record.encode()
        self.store.write(self.oid, self._tail, blob)
        self._tail += len(blob)
        self.records_written += 1
        return record

    @property
    def size_bytes(self) -> int:
        return self._tail

    # -- reading ------------------------------------------------------------------
    def scan(self) -> List[JournalRecord]:
        raw = piece_bytes(self.store.read(self.oid, 0, self._refresh_tail()))
        return JournalRecord.decode_stream(raw)

    def _refresh_tail(self) -> int:
        self._tail = self.store.get_attrs(self.oid)["size"]
        return self._tail

    def recover(self) -> RecoveryOutcome:
        """Classify every transaction seen in the journal (crash recovery)."""
        last_kind: Dict[int, str] = {}
        for record in self.scan():
            last_kind[record.txn] = record.kind
        outcome = RecoveryOutcome(committed=[], aborted=[], in_doubt=[], incomplete=[])
        for txn, kind in sorted(last_kind.items()):
            if kind == "commit":
                outcome.committed.append(txn)
            elif kind == "abort":
                outcome.aborted.append(txn)
            elif kind == "prepare":
                outcome.in_doubt.append(txn)
            else:  # begin / op
                outcome.incomplete.append(txn)
        return outcome
