"""The naming service: an *optional* layer above the LWFS-core.

The paper deliberately excludes naming from the core ("LWFS knows nothing
about the organization of objects in a container; higher-level libraries
are responsible") — but the checkpoint case study needs one to bind a
checkpoint's metadata object to a path (Fig. 8, ``CREATENAME``), so the
project ships a simple hierarchical namespace as a client service.

The namespace maps absolute slash-separated paths to entries: directories
or links to ``(ObjectID, server_id)`` pairs.  It participates in
distributed transactions so a checkpoint's name appears atomically with
its data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import NameExists, NamingError, NoSuchName, TransactionError
from .ids import ObjectID, TxnID

__all__ = ["NameEntry", "NamingService", "split_path"]


def split_path(path: str) -> List[str]:
    """Normalize an absolute path into components."""
    if not path.startswith("/"):
        raise NamingError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    if any(p in (".", "..") for p in parts):
        raise NamingError(f"path may not contain '.' or '..': {path!r}")
    return parts


@dataclass
class NameEntry:
    """One namespace binding."""

    name: str
    is_dir: bool
    target: Optional[Tuple[ObjectID, int]] = None  # (object, server) for links
    children: Dict[str, "NameEntry"] = field(default_factory=dict)
    attrs: Dict[str, object] = field(default_factory=dict)


class NamingService:
    """A hierarchical path namespace with transactional binds."""

    def __init__(self) -> None:
        self.root = NameEntry(name="/", is_dir=True)
        self._txn_undo: Dict[TxnID, List[Tuple[str, str]]] = {}
        self.ops = 0

    # -- resolution ----------------------------------------------------------
    def _walk(self, parts: List[str], create_dirs: bool = False) -> NameEntry:
        node = self.root
        for part in parts:
            if not node.is_dir:
                raise NamingError(f"{node.name!r} is not a directory")
            child = node.children.get(part)
            if child is None:
                if not create_dirs:
                    raise NoSuchName(f"no entry {part!r}")
                child = NameEntry(name=part, is_dir=True)
                node.children[part] = child
            node = child
        return node

    def lookup(self, path: str) -> Tuple[ObjectID, int]:
        """Resolve *path* to its (object, server) target."""
        self.ops += 1
        parts = split_path(path)
        if not parts:
            raise NamingError("cannot look up the root as an object")
        entry = self._walk(parts)
        if entry.is_dir or entry.target is None:
            raise NamingError(f"{path!r} is a directory")
        return entry.target

    def exists(self, path: str) -> bool:
        try:
            parts = split_path(path)
            self._walk(parts)
            return True
        except NoSuchName:
            return False

    def list_dir(self, path: str) -> List[str]:
        self.ops += 1
        entry = self._walk(split_path(path))
        if not entry.is_dir:
            raise NamingError(f"{path!r} is not a directory")
        return sorted(entry.children)

    # -- mutation --------------------------------------------------------------
    def create_name(
        self,
        path: str,
        target: Tuple[ObjectID, int],
        txnid: Optional[TxnID] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Bind *path* to *target*, creating parent directories."""
        self.ops += 1
        parts = split_path(path)
        if not parts:
            raise NamingError("cannot bind the root")
        parent = self._walk(parts[:-1], create_dirs=True)
        if not parent.is_dir:
            raise NamingError(f"parent of {path!r} is not a directory")
        leaf = parts[-1]
        if leaf in parent.children:
            raise NameExists(f"{path!r} already bound")
        parent.children[leaf] = NameEntry(
            name=leaf, is_dir=False, target=target, attrs=dict(attrs or {})
        )
        if txnid is not None:
            self._undo_log(txnid).append(("unbind", path))

    def create_dir(self, path: str) -> None:
        self.ops += 1
        parts = split_path(path)
        parent = self._walk(parts[:-1], create_dirs=True)
        if not parent.is_dir:
            raise NamingError(f"parent of {path!r} is not a directory")
        leaf = parts[-1]
        if leaf in parent.children:
            raise NameExists(f"{path!r} already exists")
        parent.children[leaf] = NameEntry(name=leaf, is_dir=True)

    def remove_name(self, path: str) -> None:
        self.ops += 1
        parts = split_path(path)
        if not parts:
            raise NamingError("cannot remove the root")
        parent = self._walk(parts[:-1])
        leaf = parts[-1]
        entry = parent.children.get(leaf)
        if entry is None:
            raise NoSuchName(f"no entry {path!r}")
        if entry.is_dir and entry.children:
            raise NamingError(f"directory {path!r} is not empty")
        del parent.children[leaf]

    def rename(self, old: str, new: str) -> None:
        self.ops += 1
        old_parts = split_path(old)
        new_parts = split_path(new)
        if not old_parts or not new_parts:
            raise NamingError("cannot rename the root")
        old_parent = self._walk(old_parts[:-1])
        entry = old_parent.children.get(old_parts[-1])
        if entry is None:
            raise NoSuchName(f"no entry {old!r}")
        new_parent = self._walk(new_parts[:-1], create_dirs=True)
        if new_parts[-1] in new_parent.children:
            raise NameExists(f"{new!r} already bound")
        del old_parent.children[old_parts[-1]]
        entry.name = new_parts[-1]
        new_parent.children[new_parts[-1]] = entry

    # -- transaction participation -------------------------------------------------
    def txn_begin(self, txnid: TxnID) -> None:
        """Join a distributed transaction (idempotent, like the servers)."""
        if txnid not in self._txn_undo:
            self._txn_undo[txnid] = []

    def txn_prepare(self, txnid: TxnID) -> bool:
        if txnid not in self._txn_undo:
            raise TransactionError(f"unknown {txnid} on naming service")
        return True

    def txn_commit(self, txnid: TxnID) -> None:
        self._txn_undo.pop(txnid, None)

    def txn_abort(self, txnid: TxnID) -> None:
        undo = self._txn_undo.pop(txnid, None)
        if undo is None:
            return
        for action, path in reversed(undo):
            if action == "unbind":
                try:
                    self.remove_name(path)
                except NoSuchName:
                    pass

    def _undo_log(self, txnid: TxnID) -> List[Tuple[str, str]]:
        try:
            return self._txn_undo[txnid]
        except KeyError:
            raise TransactionError(f"unknown {txnid} on naming service") from None
