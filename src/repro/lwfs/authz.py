"""The authorization service (paper §3.1, Figures 3-5).

Responsibilities:

* manage containers and their access-control policies (uid → OpMask),
* issue signed capabilities to authenticated, authorized users,
* verify capabilities for trusted components (storage servers) — and
  remember *who* verified *what* (back pointers) so that
* revocation can invalidate cached verify results "immediately" on every
  caching server, including **partial** revocation: revoking write access
  to a container kills write capabilities while read capabilities keep
  working (§3.1.4's chmod example).

Only this service can verify a capability's HMAC; storage servers never
see the signing secret (the paper's divergence from NASD/T10, §3.1.2).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import (
    CapabilityExpired,
    CapabilityInvalid,
    CapabilityRevoked,
    NoSuchContainer,
    PermissionDenied,
)
from .authn import AuthenticationService
from .capabilities import Capability, OpMask
from .credentials import Credential
from .ids import ContainerID, IdFactory, UserID

__all__ = ["ContainerPolicy", "AuthorizationService", "VerifiedCap", "DEFAULT_CAP_LIFETIME"]

#: Default capability lifetime (seconds).
DEFAULT_CAP_LIFETIME = 4 * 3600.0


@dataclass
class ContainerPolicy:
    """Access-control policy for one container: uid -> allowed ops."""

    cid: ContainerID
    owner: UserID
    acl: Dict[UserID, OpMask] = field(default_factory=dict)

    def allowed(self, uid: UserID) -> OpMask:
        return self.acl.get(uid, OpMask.NONE)


@dataclass(frozen=True)
class VerifiedCap:
    """The verify result a storage server may cache.

    ``expires_at`` bounds how long the cached result may be honored —
    a cache hit must not outlive the capability itself.
    """

    cid: ContainerID
    ops: OpMask
    serial: int
    expires_at: float = float("inf")


class AuthorizationService:
    """Centralized policy decisions, distributed enforcement (paper §2.4)."""

    def __init__(
        self,
        authn: AuthenticationService,
        clock: Optional[Callable[[], float]] = None,
        cap_lifetime: float = DEFAULT_CAP_LIFETIME,
        ids: Optional[IdFactory] = None,
    ) -> None:
        self.authn = authn
        self.clock = clock or authn.clock
        self.cap_lifetime = cap_lifetime
        self.ids = ids or IdFactory()
        self._secret = secrets.token_bytes(32)
        self.epoch = 1
        self._policies: Dict[ContainerID, ContainerPolicy] = {}
        #: serials revoked individually or via policy changes.
        self._revoked_serials: Set[int] = set()
        #: back pointers: (cid) -> {server_id -> set of cached serials}
        self._registrants: Dict[ContainerID, Dict[object, Set[int]]] = {}
        #: callbacks to reach caching servers: server_id -> invalidate fn.
        self._invalidators: Dict[object, Callable[[ContainerID, List[int]], None]] = {}
        #: issued capabilities by serial (for policy-diff revocation).
        self._issued: Dict[int, Capability] = {}
        self.verify_count = 0
        self.getcap_count = 0

    # -- trusted-component registration (Fig. 5 trust circle) -----------------
    def register_server(
        self, server_id: object, invalidate: Callable[[ContainerID, List[int]], None]
    ) -> None:
        """Register a storage server's cache-invalidation callback.

        In the simulated deployment the callback enqueues an RPC; in the
        functional deployment it pokes the server object directly.
        """
        self._invalidators[server_id] = invalidate

    # -- container management ----------------------------------------------------
    def create_container(self, cred: Credential, acl: Optional[Dict[UserID, OpMask]] = None) -> ContainerID:
        """Create a container owned by the credential's principal."""
        uid = self.authn.verify_cred(cred)
        cid = self.ids.container()
        policy = ContainerPolicy(cid=cid, owner=uid)
        policy.acl[uid] = OpMask.ALL
        if acl:
            policy.acl.update(acl)
        self._policies[cid] = policy
        return cid

    def remove_container(self, cred: Credential, cid: ContainerID) -> None:
        uid = self.authn.verify_cred(cred)
        policy = self._policy(cid)
        if policy.owner != uid:
            raise PermissionDenied(f"{uid} does not own {cid}")
        self.set_acl(cred, cid, {})  # revokes everything outstanding
        del self._policies[cid]

    def get_acl(self, cid: ContainerID) -> Dict[UserID, OpMask]:
        return dict(self._policy(cid).acl)

    def set_acl(self, cred: Credential, cid: ContainerID, acl: Dict[UserID, OpMask]) -> None:
        """Replace the container's ACL; the LWFS 'chmod'.

        Rights *removed* by the new policy are revoked immediately from all
        outstanding capabilities (and from every server caching them,
        §3.1.4); rights that survive keep their capabilities valid.
        """
        uid = self.authn.verify_cred(cred)
        policy = self._policy(cid)
        if policy.owner != uid:
            raise PermissionDenied(f"{uid} does not own {cid}")
        old = dict(policy.acl)
        policy.acl = dict(acl)
        policy.acl.setdefault(policy.owner, OpMask.ALL)
        # Diff: for each uid, ops present before but absent now are revoked.
        for user, before in old.items():
            after = policy.acl.get(user, OpMask.NONE)
            lost = before & ~after
            if lost:
                self.revoke(cid, lost, uid=user)

    # -- capability issue (Fig. 4a) -------------------------------------------------
    def get_caps(self, cred: Credential, cid: ContainerID, ops: OpMask) -> Capability:
        """Issue a capability for *ops* on *cid* to the credential's user."""
        uid = self.authn.verify_cred(cred)
        policy = self._policy(cid)
        allowed = policy.allowed(uid)
        if (allowed & ops) != ops:
            raise PermissionDenied(
                f"{uid} may {allowed.describe()} on {cid}, requested {ops.describe()}"
            )
        self.getcap_count += 1
        cap = Capability.issue(
            self._secret,
            cid=cid,
            ops=ops,
            uid=uid,
            epoch=self.epoch,
            expires_at=self.clock() + self.cap_lifetime,
        )
        self._issued[cap.serial] = cap
        return cap

    def get_cap_set(
        self, cred: Credential, cid: ContainerID, op_list: List[OpMask]
    ) -> List[Capability]:
        """Issue one capability per requested op-mask (e.g. separate
        read and write caps so they can be revoked independently)."""
        return [self.get_caps(cred, cid, ops) for ops in op_list]

    # -- verification (Fig. 4b step 2) ------------------------------------------------
    def verify(self, cap: Capability, server_id: object = None) -> VerifiedCap:
        """Verify *cap*; optionally record a back pointer for *server_id*.

        Storage servers call this on a cache miss and then cache the
        result; the back pointer lets :meth:`revoke` find their caches.
        """
        self.verify_count += 1
        if cap.epoch != self.epoch:
            raise CapabilityExpired(
                f"capability epoch {cap.epoch} != service epoch {self.epoch}"
            )
        if not cap.signature_ok(self._secret):
            raise CapabilityInvalid("capability signature does not verify")
        if cap.serial in self._revoked_serials:
            raise CapabilityRevoked(f"capability serial {cap.serial} was revoked")
        if self.clock() > cap.expires_at:
            raise CapabilityExpired("capability lifetime elapsed")
        if cap.cid not in self._policies:
            raise NoSuchContainer(f"{cap.cid} no longer exists")
        if server_id is not None:
            self._registrants.setdefault(cap.cid, {}).setdefault(server_id, set()).add(
                cap.serial
            )
        return VerifiedCap(
            cid=cap.cid, ops=cap.ops, serial=cap.serial, expires_at=cap.expires_at
        )

    # -- revocation (§3.1.4) ----------------------------------------------------------
    def revoke(
        self,
        cid: ContainerID,
        ops: OpMask = OpMask.ALL,
        uid: Optional[UserID] = None,
    ) -> Tuple[List[int], List[object]]:
        """Revoke outstanding capabilities on *cid* whose ops overlap *ops*.

        A capability is revoked if it grants **any** of the revoked ops
        (a write+read cap dies when write is revoked — the holder must
        re-acquire a read-only cap; issuing separate caps per op, as
        :meth:`get_cap_set` encourages, avoids that).  Returns the revoked
        serials and the servers that were notified.
        """
        victims = [
            cap.serial
            for cap in self._issued.values()
            if cap.cid == cid
            and cap.serial not in self._revoked_serials
            and (cap.ops & ops) != OpMask.NONE
            and (uid is None or cap.uid == uid)
        ]
        self._revoked_serials.update(victims)
        notified: List[object] = []
        if victims:
            for server_id, cached in list(self._registrants.get(cid, {}).items()):
                hit = [s for s in victims if s in cached]
                if hit:
                    cached.difference_update(hit)
                    invalidate = self._invalidators.get(server_id)
                    if invalidate is not None:
                        invalidate(cid, hit)
                    notified.append(server_id)
        return victims, notified

    def revoke_serials(self, serials: List[int]) -> None:
        """Low-level revocation by serial (used by credential revocation)."""
        self._revoked_serials.update(serials)
        by_cid: Dict[ContainerID, List[int]] = {}
        for serial in serials:
            cap = self._issued.get(serial)
            if cap is not None:
                by_cid.setdefault(cap.cid, []).append(serial)
        for cid, victims in by_cid.items():
            for server_id, cached in list(self._registrants.get(cid, {}).items()):
                hit = [s for s in victims if s in cached]
                if hit:
                    cached.difference_update(hit)
                    invalidate = self._invalidators.get(server_id)
                    if invalidate is not None:
                        invalidate(cid, hit)

    def export_shared_key(self, server_id: object, on_rotate=None) -> bytes:
        """Hand the signing key to a storage server (NASD/T10 mode, §3.1.2).

        This is the trust expansion the paper rejects: a server holding
        the key could *mint* capabilities, and the service loses the back
        pointers revocation depends on.  Provided so the trade-off can be
        measured (see bench_ablation_verifycache and the security tests).
        ``on_rotate(new_key, new_epoch)`` is called when :meth:`restart`
        rotates the key.
        """
        self._key_holders = getattr(self, "_key_holders", {})
        self._key_holders[server_id] = on_rotate
        return self._secret

    def restart(self) -> None:
        """Bump the instance epoch: all previously-issued capabilities die
        ("limited in life to the current, issuing instance", §3.1.2).

        The signing key rotates with the epoch, and key holders (shared-key
        mode) are told — in that mode, re-keying every server is the *only*
        way to invalidate outstanding capabilities.
        """
        self.epoch += 1
        self._secret = secrets.token_bytes(32)
        self._issued.clear()
        self._revoked_serials.clear()
        self._registrants.clear()
        for on_rotate in getattr(self, "_key_holders", {}).values():
            if on_rotate is not None:
                on_rotate(self._secret, self.epoch)

    # -- internals -----------------------------------------------------------------------
    def _policy(self, cid: ContainerID) -> ContainerPolicy:
        try:
            return self._policies[cid]
        except KeyError:
            raise NoSuchContainer(f"no container {cid}") from None

    def container_exists(self, cid: ContainerID) -> bool:
        return cid in self._policies
