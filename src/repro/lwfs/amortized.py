"""Amortized analysis of capability verification (paper §3.1.2).

The paper asserts: "An amortized analysis of this approach proves that
given the computing environment for MPPs, the amortized impact of this
additional communication is minimal; however, space restrictions do not
allow a complete explanation of our analysis."

This module supplies that analysis.  Under the caching scheme, each
storage server pays one verify round trip per *distinct capability* it
ever sees (per epoch); every subsequent use hits the cache.  For an
application making ``A`` accesses with ``k`` capabilities spread over
``m`` servers, the extra communication is at most ``k * m`` round trips
regardless of ``A`` — so the per-access overhead vanishes as the run
lengthens.  The shared-key scheme (NASD/T10) has zero extra round trips
but requires the authorization service to trust every storage server with
the signing key.

``bench_ablation_verifycache`` checks the closed forms below against the
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VerifyCostModel", "CostBreakdown"]


@dataclass(frozen=True)
class CostBreakdown:
    """Totals for one scheme over one workload."""

    scheme: str
    verify_messages: int
    verify_seconds: float
    per_access_overhead: float
    fraction_of_io_time: float


@dataclass(frozen=True)
class VerifyCostModel:
    """Closed-form costs of the three verification schemes.

    Parameters
    ----------
    n_clients:
        application processes (n in the paper's rules of §2.3).
    n_servers:
        storage servers touched by the application (m).
    n_caps:
        distinct capabilities in use (k); the checkpoint uses ~2.
    accesses_per_client:
        I/O requests each client issues (A/n).
    verify_rtt:
        round-trip time of one verify RPC to the authorization service.
    io_time_per_access:
        time one data access takes (for the "fraction of I/O time" ratio).
    """

    n_clients: int
    n_servers: int
    n_caps: int
    accesses_per_client: int
    verify_rtt: float
    io_time_per_access: float

    @property
    def total_accesses(self) -> int:
        return self.n_clients * self.accesses_per_client

    def _breakdown(self, scheme: str, messages: int) -> CostBreakdown:
        seconds = messages * self.verify_rtt
        accesses = max(1, self.total_accesses)
        io_time = accesses * self.io_time_per_access
        return CostBreakdown(
            scheme=scheme,
            verify_messages=messages,
            verify_seconds=seconds,
            per_access_overhead=seconds / accesses,
            fraction_of_io_time=seconds / io_time if io_time > 0 else float("inf"),
        )

    def caching(self) -> CostBreakdown:
        """LWFS scheme: one verify per (capability, server) pair, ever."""
        return self._breakdown("lwfs-caching", self.n_caps * self.n_servers)

    def no_cache(self) -> CostBreakdown:
        """Strawman: verify every access at the authorization server.

        This is what §2.4 calls the unscalable design — the authorization
        server sees O(A) messages and becomes the metadata-server
        bottleneck all over again.
        """
        return self._breakdown("no-cache", self.total_accesses)

    def shared_key(self) -> CostBreakdown:
        """NASD/T10 scheme: servers verify locally with the shared key.

        Zero verify messages — bought by trusting every storage server
        with the capability-signing secret (the trade §3.1.2 rejects).
        """
        return self._breakdown("shared-key", 0)

    def amortized_ratio(self) -> float:
        """Caching overhead relative to total I/O time (→ 0 as A grows)."""
        return self.caching().fraction_of_io_time

    def accesses_to_amortize(self, target_fraction: float = 0.01) -> int:
        """Total accesses needed before caching overhead ≤ *target_fraction*
        of I/O time."""
        if target_fraction <= 0:
            raise ValueError("target_fraction must be positive")
        needed = (self.n_caps * self.n_servers * self.verify_rtt) / (
            target_fraction * self.io_time_per_access
        )
        import math

        return int(math.ceil(needed))
