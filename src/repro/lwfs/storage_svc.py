"""The LWFS storage service: enforcement at the edge (paper §3.1-3.3).

A storage server *enforces* access-control policy but never *decides* it:
each request carries a capability; the server checks its verify-result
cache and, on a miss, asks the authorization service (Figure 4b), caching
the answer.  Revocation removes entries from these caches via the back
pointers the authorization service keeps (§3.1.4).

The service also implements transaction-scoped mutation with undo logging
so a distributed two-phase commit (:mod:`repro.lwfs.txn`) can roll a
checkpoint back atomically (§3.4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional

from ..errors import (
    AuthorizationError,
    PermissionDenied,
    TransactionError,
)
from ..storage.data import Piece, piece_len
from ..storage.obd import ObjectStore, StorageObject
from .authz import VerifiedCap
from .capabilities import Capability, OpMask
from .ids import ContainerID, ObjectID, TxnID

__all__ = ["VerifyCache", "StorageService", "OP_REQUIREMENTS"]


#: Capability bits each storage operation requires.
OP_REQUIREMENTS: Dict[str, OpMask] = {
    "create": OpMask.CREATE,
    "remove": OpMask.REMOVE,
    "read": OpMask.READ,
    "write": OpMask.WRITE,
    "getattr": OpMask.GETATTR,
    "setattr": OpMask.SETATTR,
    "list": OpMask.LIST,
}


class VerifyCache:
    """Cache of verify results, keyed by capability serial.

    The cache is the paper's central security optimization: it gives the
    scalability of independently-verifiable capabilities without trusting
    storage servers with the signing key.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._entries: Dict[int, VerifiedCap] = {}
        #: Per-entry tenant multiplicity: a collapsed representative's
        #: capability stands for its whole tenant block, so evicting it
        #: counts as that many real invalidations (revocation blast
        #: radius).  Entries inserted without a weight count as 1.
        self._entry_weights: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def lookup(
        self, cap: Capability, now: Optional[float] = None, weight: int = 1
    ) -> Optional[VerifiedCap]:
        """``weight`` > 1: this lookup stands for *weight* client requests
        (a batched open-loop arrival group) — hit/miss counters scale so
        the hit *rate* reflects the represented request stream."""
        if not self.enabled:
            self.misses += weight
            return None
        entry = self._entries.get(cap.serial)
        if entry is None:
            self.misses += weight
            return None
        if now is not None and now > entry.expires_at:
            # The cached verify result must not outlive the capability.
            del self._entries[cap.serial]
            self._entry_weights.pop(cap.serial, None)
            self.misses += weight
            return None
        self.hits += weight
        return entry

    def insert(self, verified: VerifiedCap, weight: int = 1) -> None:
        if self.enabled:
            self._entries[verified.serial] = verified
            if weight != 1:
                self._entry_weights[verified.serial] = weight

    def invalidate(self, serials: List[int]) -> int:
        removed = 0
        for serial in serials:
            if self._entries.pop(serial, None) is not None:
                removed += self._entry_weights.pop(serial, 1)
        self.invalidations += removed
        return removed

    @property
    def hit_rate(self) -> float:
        """Hit ratio over all lookups (0.0 when the cache saw none)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class _UndoRecord:
    kind: str  # "create" | "write" | "remove" | "setattr" | "truncate"
    oid: Hashable
    data: Any = None


@dataclass
class _TxnState:
    txnid: TxnID
    undo: List[_UndoRecord] = field(default_factory=list)
    status: str = "active"  # active -> prepared -> committed | aborted


class StorageService:
    """One storage server: an object store plus policy enforcement.

    ``verifier`` resolves cache misses.  The functional deployment passes
    ``authz.verify``; the simulated deployment leaves it ``None`` and
    performs the verify RPC itself before re-entering (see
    :mod:`repro.sim.servers`).
    """

    def __init__(
        self,
        server_id: int,
        store: Optional[ObjectStore] = None,
        verifier: Optional[Callable[[Capability, object], VerifiedCap]] = None,
        cache_enabled: bool = True,
        enforce: bool = True,
        shared_secret: Optional[bytes] = None,
        epoch_hint: int = 1,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.server_id = server_id
        self.store = store or ObjectStore(name=f"obd{server_id}")
        self.verifier = verifier
        #: NASD/T10-style mode (§3.1.2): the authorization service shares
        #: its signing key, so this server verifies capabilities locally —
        #: zero verify traffic, bought by trusting the server with the key
        #: *and* losing visibility into revocations (tested explicitly).
        self.shared_secret = shared_secret
        self.epoch_hint = epoch_hint
        self.clock = clock
        self.cache = VerifyCache(enabled=cache_enabled)
        #: serials verified out-of-band by an embedding that does its own
        #: wire verification (the simulated server with caching disabled
        #: re-verifies remotely on *every* request; this set only hands the
        #: structural-enforcement result back in).
        self._preauthorized: set = set()
        self.enforce = enforce
        self._oid_counter = itertools.count(1)
        self._txns: Dict[TxnID, _TxnState] = {}
        self.op_count = 0

    # -- enforcement -----------------------------------------------------------
    def authorize(self, cap: Capability, needed: OpMask, cid: Optional[ContainerID] = None) -> None:
        """Raise unless *cap* validly grants *needed* on *cid*.

        Checks, in order: structural grant, container match, verify cache,
        then (on a miss) the verifier.  The sequence matches Figure 4b.
        """
        if not self.enforce:
            return
        if cap is None:
            raise PermissionDenied("no capability supplied")
        if not cap.grants(needed):
            raise PermissionDenied(
                f"capability grants {cap.ops.describe()}, operation needs {needed.describe()}"
            )
        if cid is not None and cap.cid != cid:
            raise PermissionDenied(f"capability is for {cap.cid}, object lives in {cid}")
        if self.shared_secret is not None:
            self._verify_shared_key(cap)
            return
        now = self.clock() if self.clock is not None else None
        if self.cache.lookup(cap, now) is not None:
            return
        if self.verifier is None:
            if cap.serial in self._preauthorized:
                return
            raise AuthorizationError(
                f"server {self.server_id}: capability not cached and no verifier wired"
            )
        verified = self.verifier(cap, self.server_id)
        self.cache.insert(verified)

    def _verify_shared_key(self, cap: Capability) -> None:
        """Local verification with the shared signing key (NASD mode).

        Note what this *cannot* check: whether the authorization service
        revoked the capability since issue — the service never learns this
        server saw the capability, so there is no back pointer to follow.
        That is precisely the paper's argument for the caching scheme.
        """
        from ..errors import CapabilityExpired, CapabilityInvalid

        if cap.epoch != self.epoch_hint:
            raise CapabilityExpired(
                f"capability epoch {cap.epoch} != key epoch {self.epoch_hint}"
            )
        if not cap.signature_ok(self.shared_secret):
            raise CapabilityInvalid("capability signature does not verify (shared key)")
        if self.clock is not None and self.clock() > cap.expires_at:
            raise CapabilityExpired("capability lifetime elapsed")

    def invalidate_cached(self, cid: ContainerID, serials: List[int]) -> int:
        """Back-pointer callback from the authorization service (§3.1.4)."""
        self._preauthorized.difference_update(serials)
        return self.cache.invalidate(serials)

    # -- object lifecycle ----------------------------------------------------------
    def create_object(
        self,
        cap: Capability,
        oid: Optional[ObjectID] = None,
        attrs: Optional[Dict[str, Any]] = None,
        txnid: Optional[TxnID] = None,
    ) -> ObjectID:
        """Create an object in the capability's container."""
        self.authorize(cap, OpMask.CREATE)
        if oid is None:
            oid = ObjectID(
                value=self.server_id * 1_000_000_000 + next(self._oid_counter),
                server_hint=self.server_id,
            )
        cid = cap.cid if cap is not None else ContainerID(0)
        self.store.create(oid, cid, attrs)
        self._record_undo(txnid, _UndoRecord(kind="create", oid=oid))
        self.op_count += 1
        return oid

    def remove_object(self, cap: Capability, oid: ObjectID, txnid: Optional[TxnID] = None) -> None:
        cid = self.store.container_of(oid)
        self.authorize(cap, OpMask.REMOVE, cid)
        obj = self.store._get(oid)
        snapshot = (obj.cid, obj.extents, dict(obj.attrs))
        self.store.remove(oid)
        self._record_undo(txnid, _UndoRecord(kind="remove", oid=oid, data=snapshot))
        self.op_count += 1

    # -- data ---------------------------------------------------------------------------
    def write(
        self,
        cap: Capability,
        oid: ObjectID,
        offset: int,
        data: Piece,
        txnid: Optional[TxnID] = None,
    ) -> int:
        cid = self.store.container_of(oid)
        self.authorize(cap, OpMask.WRITE, cid)
        if txnid is not None and not self._created_in_txn(txnid, oid):
            pre_image = self.store.read(oid, offset, piece_len(data))
            pre_size = self.store._get(oid).size
            self._record_undo(
                txnid,
                _UndoRecord(kind="write", oid=oid, data=(offset, pre_image, pre_size)),
            )
        self.op_count += 1
        return self.store.write(oid, offset, data)

    def read(self, cap: Capability, oid: ObjectID, offset: int, length: int) -> Piece:
        cid = self.store.container_of(oid)
        self.authorize(cap, OpMask.READ, cid)
        self.op_count += 1
        return self.store.read(oid, offset, length)

    # -- attributes -----------------------------------------------------------------------
    def get_attrs(self, cap: Capability, oid: ObjectID) -> Dict[str, Any]:
        cid = self.store.container_of(oid)
        self.authorize(cap, OpMask.GETATTR, cid)
        self.op_count += 1
        return self.store.get_attrs(oid)

    def set_attr(
        self,
        cap: Capability,
        oid: ObjectID,
        key: str,
        value: Any,
        txnid: Optional[TxnID] = None,
    ) -> None:
        cid = self.store.container_of(oid)
        self.authorize(cap, OpMask.SETATTR, cid)
        if txnid is not None and not self._created_in_txn(txnid, oid):
            old = self.store._get(oid).attrs.get(key)
            had = key in self.store._get(oid).attrs
            self._record_undo(txnid, _UndoRecord(kind="setattr", oid=oid, data=(key, old, had)))
        self.store.set_attr(oid, key, value)
        self.op_count += 1

    def list_objects(self, cap: Capability, cid: Optional[ContainerID] = None) -> List[ObjectID]:
        target_cid = cid if cid is not None else cap.cid
        self.authorize(cap, OpMask.LIST, target_cid)
        self.op_count += 1
        return self.store.list_objects(target_cid)

    # -- transactions (participant side of two-phase commit, §3.4) ----------------------
    def txn_begin(self, txnid: TxnID) -> None:
        """Join (or re-join) a distributed transaction.

        Idempotent: several client processes of one parallel application
        may all announce the same transaction to this server.
        """
        if txnid not in self._txns:
            self._txns[txnid] = _TxnState(txnid=txnid)

    def txn_joined(self, txnid: TxnID) -> bool:
        return txnid in self._txns

    def txn_prepare(self, txnid: TxnID) -> bool:
        """Phase 1: promise to commit.  Returns the vote."""
        state = self._txn(txnid)
        if state.status != "active":
            raise TransactionError(f"{txnid} is {state.status}, cannot prepare")
        state.status = "prepared"
        return True

    def txn_commit(self, txnid: TxnID) -> None:
        """Phase 2: make effects permanent; the undo log is discarded."""
        state = self._txn(txnid)
        if state.status not in ("prepared", "active"):
            raise TransactionError(f"{txnid} is {state.status}, cannot commit")
        state.status = "committed"
        del self._txns[txnid]

    def txn_abort(self, txnid: TxnID) -> None:
        """Roll back every effect recorded for *txnid*, newest first."""
        state = self._txns.get(txnid)
        if state is None:
            return  # never joined or already resolved: abort is idempotent
        for record in reversed(state.undo):
            self._apply_undo(record)
        state.status = "aborted"
        del self._txns[txnid]

    # -- internals ------------------------------------------------------------------------
    def _txn(self, txnid: TxnID) -> _TxnState:
        try:
            return self._txns[txnid]
        except KeyError:
            raise TransactionError(f"unknown {txnid} on server {self.server_id}") from None

    def _record_undo(self, txnid: Optional[TxnID], record: _UndoRecord) -> None:
        if txnid is None:
            return
        self._txn(txnid).undo.append(record)

    def _created_in_txn(self, txnid: TxnID, oid: Hashable) -> bool:
        state = self._txns.get(txnid)
        if state is None:
            raise TransactionError(f"unknown {txnid} on server {self.server_id}")
        return any(r.kind == "create" and r.oid == oid for r in state.undo)

    def _apply_undo(self, record: _UndoRecord) -> None:
        if record.kind == "create":
            if self.store.exists(record.oid):
                self.store.remove(record.oid)
        elif record.kind == "remove":
            cid, extents, attrs = record.data
            obj = self.store.create(record.oid, cid, attrs)
            obj.extents = extents
        elif record.kind == "write":
            offset, pre_image, pre_size = record.data
            if self.store.exists(record.oid):
                self.store.write(record.oid, offset, pre_image)
                self.store.truncate(record.oid, pre_size)
        elif record.kind == "setattr":
            key, old, had = record.data
            if self.store.exists(record.oid):
                obj = self.store._get(record.oid)
                if had:
                    obj.attrs[key] = old
                else:
                    obj.attrs.pop(key, None)
        else:  # pragma: no cover - defensive
            raise TransactionError(f"unknown undo record kind {record.kind!r}")
