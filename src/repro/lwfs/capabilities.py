"""Capabilities: proof of authorization (paper §3.1.2).

A capability entitles its *holder* (capabilities are fully transferable —
possession is authorization) to perform a set of operations on a
**container** of objects.  It carries an HMAC signature that only the
issuing authorization service can verify, because only that service holds
the signing secret; this is the key divergence from NASD/T10 shared-key
schemes the paper argues for in §3.1.2.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
import itertools
from dataclasses import dataclass, field

from .ids import ContainerID, UserID

__all__ = ["OpMask", "Capability", "sign_capability"]


class OpMask(enum.IntFlag):
    """Operations a capability may grant on a container's objects."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    CREATE = enum.auto()
    REMOVE = enum.auto()
    GETATTR = enum.auto()
    SETATTR = enum.auto()
    LIST = enum.auto()

    # Convenience unions.
    RW = READ | WRITE
    ALL = READ | WRITE | CREATE | REMOVE | GETATTR | SETATTR | LIST

    def describe(self) -> str:
        if self is OpMask.NONE:
            return "none"
        names = [m.name.lower() for m in OpMask if m.name and m.value.bit_count() == 1 and m in self]
        return "|".join(names)


_cap_serials = itertools.count(1)


def _canonical(cid: ContainerID, ops: OpMask, uid: UserID, epoch: int, serial: int, expires_at: float) -> bytes:
    """Canonical byte encoding of the signed fields."""
    return (
        f"cap|cid={cid.value}|ops={int(ops)}|uid={uid.name}|epoch={epoch}"
        f"|serial={serial}|exp={expires_at!r}"
    ).encode("utf-8")


def sign_capability(
    secret: bytes,
    cid: ContainerID,
    ops: OpMask,
    uid: UserID,
    epoch: int,
    serial: int,
    expires_at: float,
) -> bytes:
    """HMAC-SHA256 over the capability's canonical encoding."""
    return hmac.new(secret, _canonical(cid, ops, uid, epoch, serial, expires_at), hashlib.sha256).digest()


@dataclass(frozen=True)
class Capability:
    """An unforgeable, transferable grant of ``ops`` on container ``cid``.

    ``epoch`` ties the capability to the issuing authorization-service
    instance ("limited in life to the current, issuing instance", §3.1.2);
    ``serial`` makes each issued capability distinct so revocation can
    target individual grants.  The signature can only be checked by the
    issuer — storage servers *cache verify results* instead of holding the
    key (§3.1.2's divergence from NASD).
    """

    cid: ContainerID
    ops: OpMask
    uid: UserID
    epoch: int
    serial: int
    expires_at: float
    signature: bytes = field(repr=False)

    @classmethod
    def issue(
        cls,
        secret: bytes,
        cid: ContainerID,
        ops: OpMask,
        uid: UserID,
        epoch: int,
        expires_at: float,
    ) -> "Capability":
        serial = next(_cap_serials)
        sig = sign_capability(secret, cid, ops, uid, epoch, serial, expires_at)
        return cls(
            cid=cid,
            ops=ops,
            uid=uid,
            epoch=epoch,
            serial=serial,
            expires_at=expires_at,
            signature=sig,
        )

    def signature_ok(self, secret: bytes) -> bool:
        """Recompute and compare the HMAC (issuer-side check only)."""
        expected = sign_capability(
            secret, self.cid, self.ops, self.uid, self.epoch, self.serial, self.expires_at
        )
        return hmac.compare_digest(expected, self.signature)

    def grants(self, ops: OpMask) -> bool:
        """Does this capability cover every operation in *ops*?"""
        return (self.ops & ops) == ops

    @property
    def cache_key(self) -> bytes:
        """Key under which storage servers cache the verify result."""
        return self.signature

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Capability {self.cid} ops={self.ops.describe()} uid={self.uid.name} "
            f"serial={self.serial} epoch={self.epoch}>"
        )
