"""The LWFS-core (paper §3): security, object storage, naming, transactions.

The core deliberately contains only what *every* I/O system needs —
authentication, authorization, direct object access, data movement, and
transaction primitives.  Naming, distribution, consistency, and caching
policies live in layers above (:mod:`repro.iolib`), exactly as Figure 2
prescribes.
"""

from .amortized import CostBreakdown, VerifyCostModel
from .authn import DEFAULT_LIFETIME, AuthenticationService, ExternalAuthMechanism, MockKerberos
from .authz import DEFAULT_CAP_LIFETIME, AuthorizationService, ContainerPolicy, VerifiedCap
from .capabilities import Capability, OpMask, sign_capability
from .client import LWFSClient, LWFSDomain
from .credentials import Credential
from .ids import ContainerID, IdFactory, ObjectID, TxnID, UserID
from .journal import Journal, JournalRecord, RecoveryOutcome
from .locks import Lock, LockMode, LockService
from .naming import NameEntry, NamingService, split_path
from .storage_svc import OP_REQUIREMENTS, StorageService, VerifyCache
from .txn import Transaction, TxnCoordinator, TxnParticipant

__all__ = [
    "ContainerID",
    "ObjectID",
    "TxnID",
    "UserID",
    "IdFactory",
    "Credential",
    "ExternalAuthMechanism",
    "MockKerberos",
    "AuthenticationService",
    "DEFAULT_LIFETIME",
    "Capability",
    "OpMask",
    "sign_capability",
    "AuthorizationService",
    "ContainerPolicy",
    "VerifiedCap",
    "DEFAULT_CAP_LIFETIME",
    "StorageService",
    "VerifyCache",
    "OP_REQUIREMENTS",
    "NamingService",
    "NameEntry",
    "split_path",
    "LockService",
    "Lock",
    "LockMode",
    "Journal",
    "JournalRecord",
    "RecoveryOutcome",
    "TxnCoordinator",
    "Transaction",
    "TxnParticipant",
    "LWFSDomain",
    "LWFSClient",
    "VerifyCostModel",
    "CostBreakdown",
]
