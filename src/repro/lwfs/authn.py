"""The authentication service and its external mechanism (paper §3.1, Fig. 3).

The LWFS authentication server does not itself check passwords — it
"interfaces with an external authentication mechanism (e.g., Kerberos) to
manage and verify identities of users".  We model that split faithfully:

* :class:`ExternalAuthMechanism` — the pluggable trusted verifier,
* :class:`MockKerberos` — a toy realization with principals and secrets,
* :class:`AuthenticationService` — issues LWFS credentials backed by the
  external mechanism's tickets, verifies them for the authorization
  service, and supports immediate revocation (application exit, compromise).

Time is injectable so the simulation can drive expiry off the simulated
clock and tests can use a manual clock.
"""

from __future__ import annotations

import hmac
import secrets
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import AuthenticationError, CredentialExpired, CredentialRevoked
from .credentials import Credential
from .ids import UserID

__all__ = ["ExternalAuthMechanism", "MockKerberos", "AuthenticationService", "DEFAULT_LIFETIME"]

#: Default credential lifetime in seconds.  Long enough that a well-behaved
#: application never renews mid-run; short enough that leaked tokens die.
DEFAULT_LIFETIME = 8 * 3600.0


class ExternalAuthMechanism:
    """Interface the authentication service trusts to identify users."""

    name = "external"

    def authenticate(self, principal: str, proof: object) -> UserID:
        """Return the principal's identity or raise AuthenticationError."""
        raise NotImplementedError


@dataclass
class _Principal:
    name: str
    secret: bytes
    enabled: bool = True


class MockKerberos(ExternalAuthMechanism):
    """A toy Kerberos: principals with shared secrets.

    ``proof`` is the password string (we assume the paper's trusted
    transport, §2.4, so cleartext on the wire is acceptable by design).
    """

    name = "kerberos"

    def __init__(self) -> None:
        self._principals: Dict[str, _Principal] = {}

    def add_principal(self, name: str, password: str) -> None:
        if name in self._principals:
            raise ValueError(f"principal {name!r} exists")
        self._principals[name] = _Principal(name=name, secret=password.encode("utf-8"))

    def disable_principal(self, name: str) -> None:
        try:
            self._principals[name].enabled = False
        except KeyError:
            raise AuthenticationError(f"unknown principal {name!r}") from None

    def authenticate(self, principal: str, proof: object) -> UserID:
        entry = self._principals.get(principal)
        if entry is None or not entry.enabled:
            raise AuthenticationError(f"unknown or disabled principal {principal!r}")
        if not isinstance(proof, str):
            raise AuthenticationError("proof must be a password string")
        if not hmac.compare_digest(entry.secret, proof.encode("utf-8")):
            raise AuthenticationError(f"bad password for {principal!r}")
        return UserID(principal)


@dataclass
class _CredRecord:
    uid: UserID
    expires_at: float
    revoked: bool = False


class AuthenticationService:
    """Issues and verifies LWFS credentials (the gray 'Authentication
    Server' box of Figure 3)."""

    def __init__(
        self,
        mechanism: ExternalAuthMechanism,
        clock: Optional[Callable[[], float]] = None,
        lifetime: float = DEFAULT_LIFETIME,
    ) -> None:
        self.mechanism = mechanism
        self.clock = clock or (lambda: 0.0)
        self.lifetime = lifetime
        self._table: Dict[bytes, _CredRecord] = {}
        self.verifies = 0

    # -- issuing -------------------------------------------------------------
    def get_cred(self, principal: str, proof: object) -> Credential:
        """Authenticate via the external mechanism and mint a credential.

        The credential is fully transferable: the application may hand it to
        every process acting on behalf of the principal (paper §3.1.2).
        """
        uid = self.mechanism.authenticate(principal, proof)
        token = Credential.fresh_token()
        expires = self.clock() + self.lifetime
        self._table[token] = _CredRecord(uid=uid, expires_at=expires)
        return Credential(token=token, uid=uid, expires_at=expires, issuer=self.mechanism.name)

    # -- verification ------------------------------------------------------------
    def verify_cred(self, cred: Credential) -> UserID:
        """Validate a credential; only this service can do so.

        Note the identity comes from *our table*, not from the credential's
        display fields — a tampered ``uid`` field changes nothing.
        """
        self.verifies += 1
        record = self._table.get(cred.token)
        if record is None:
            raise AuthenticationError("unknown credential (forged or from another instance)")
        if record.revoked:
            raise CredentialRevoked(f"credential for {record.uid} was revoked")
        if self.clock() > record.expires_at:
            raise CredentialExpired(f"credential for {record.uid} expired")
        return record.uid

    # -- revocation ----------------------------------------------------------------
    def revoke_cred(self, cred: Credential) -> None:
        """Immediate revocation (application terminated, system compromise)."""
        record = self._table.get(cred.token)
        if record is None:
            raise AuthenticationError("unknown credential")
        record.revoked = True

    def revoke_user(self, uid: UserID) -> int:
        """Revoke every outstanding credential of *uid*; returns the count."""
        n = 0
        for record in self._table.values():
            if record.uid == uid and not record.revoked:
                record.revoked = True
                n += 1
        return n
