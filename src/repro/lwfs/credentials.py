"""Credentials: proof of authentication (paper §3.1.2).

A credential is an opaque, fully-transferable token proving that some
external mechanism (Kerberos in the paper; :class:`~repro.lwfs.authn.MockKerberos`
here) authenticated a principal.  Its contents are "a random string of bits
that is sufficiently difficult to guess"; the issuing authentication
service keeps the mapping token → (identity, lifetime) and is the only
entity able to verify it.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field

from .ids import UserID

__all__ = ["Credential", "TOKEN_BYTES"]

#: Entropy of a credential token.  128 bits: unguessable in practice.
TOKEN_BYTES = 16


@dataclass(frozen=True)
class Credential:
    """An opaque authentication token.

    The ``uid`` and ``expires_at`` fields ride along for *display only* —
    verification always goes back to the issuing service's table, so a
    holder editing these fields gains nothing (tested in
    ``tests/lwfs/test_authn.py``).
    """

    token: bytes
    uid: UserID
    expires_at: float
    issuer: str = "authn"

    @staticmethod
    def fresh_token() -> bytes:
        return secrets.token_bytes(TOKEN_BYTES)

    def __post_init__(self) -> None:
        if len(self.token) != TOKEN_BYTES:
            raise ValueError(f"credential token must be {TOKEN_BYTES} bytes")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Credential {self.uid} token={self.token[:4].hex()}... exp={self.expires_at}>"
