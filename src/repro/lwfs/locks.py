"""The lock service (paper §3.4).

"Locks enable consistency and isolation for concurrent transactions by
allowing the client to synchronize access" — crucially, locking in LWFS is
*opt-in*: applications whose access patterns need no synchronization (the
checkpoint of §4 writes non-overlapping objects) simply never call it,
which is exactly the overhead the traditional file system cannot shed.

Supports shared/exclusive modes on arbitrary resource keys with optional
byte ranges; conflicting grants queue FIFO.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..errors import LockConflict, LockError

__all__ = ["LockMode", "Lock", "LockService"]


class LockMode(enum.Enum):
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


def _ranges_overlap(a: Optional[Tuple[int, int]], b: Optional[Tuple[int, int]]) -> bool:
    """None means whole-resource; ranges are half-open [start, end)."""
    if a is None or b is None:
        return True
    return a[0] < b[1] and b[0] < a[1]


@dataclass(frozen=True)
class Lock:
    """A granted (or queued) lock; the handle used to release it."""

    lock_id: int
    resource: Hashable
    mode: LockMode
    owner: Hashable
    byte_range: Optional[Tuple[int, int]] = None


@dataclass
class _Waiter:
    lock: Lock
    wake: Optional[Callable[[Lock], None]] = None


class LockService:
    """Grants shared/exclusive locks over resource keys.

    ``acquire`` is non-blocking at this (functional) layer: it either
    grants or raises :class:`LockConflict` / enqueues, depending on
    *wait*.  The simulated deployment wraps acquisition in RPCs and turns
    the ``wake`` callback into an event the client process sleeps on.
    """

    def __init__(self) -> None:
        self._granted: Dict[Hashable, List[Lock]] = {}
        self._waiting: Dict[Hashable, List[_Waiter]] = {}
        self._ids = itertools.count(1)
        self.grants = 0
        self.conflicts = 0

    # -- queries -----------------------------------------------------------
    def holders(self, resource: Hashable) -> List[Lock]:
        return list(self._granted.get(resource, []))

    def queue_length(self, resource: Hashable) -> int:
        return len(self._waiting.get(resource, []))

    def _conflicts_with_granted(self, candidate: Lock) -> bool:
        for held in self._granted.get(candidate.resource, []):
            if held.owner == candidate.owner and held.byte_range == candidate.byte_range:
                continue  # re-entrant same-owner same-range: compatible
            if not _ranges_overlap(held.byte_range, candidate.byte_range):
                continue
            if held.mode is LockMode.EXCLUSIVE or candidate.mode is LockMode.EXCLUSIVE:
                return True
        return False

    def _blocked_by_queue(self, candidate: Lock) -> bool:
        """Fairness: a new request must queue behind conflicting waiters."""
        for waiter in self._waiting.get(candidate.resource, []):
            held = waiter.lock
            if not _ranges_overlap(held.byte_range, candidate.byte_range):
                continue
            if held.mode is LockMode.EXCLUSIVE or candidate.mode is LockMode.EXCLUSIVE:
                return True
        return False

    # -- acquisition ----------------------------------------------------------
    def acquire(
        self,
        resource: Hashable,
        mode: LockMode,
        owner: Hashable,
        byte_range: Optional[Tuple[int, int]] = None,
        wait: bool = False,
        wake: Optional[Callable[[Lock], None]] = None,
    ) -> Tuple[Lock, bool]:
        """Try to take a lock.

        Returns ``(lock, granted)``.  If not granted: with ``wait=True``
        the lock is queued and ``wake(lock)`` fires on grant; otherwise
        :class:`LockConflict` is raised.
        """
        if byte_range is not None and byte_range[0] >= byte_range[1]:
            raise LockError(f"empty byte range {byte_range}")
        lock = Lock(
            lock_id=next(self._ids),
            resource=resource,
            mode=mode,
            owner=owner,
            byte_range=byte_range,
        )
        if not self._conflicts_with_granted(lock) and not self._blocked_by_queue(lock):
            self._granted.setdefault(resource, []).append(lock)
            self.grants += 1
            return lock, True
        self.conflicts += 1
        if not wait:
            raise LockConflict(f"{mode.value} lock on {resource!r} conflicts")
        self._waiting.setdefault(resource, []).append(_Waiter(lock=lock, wake=wake))
        return lock, False

    def release(self, lock: Lock) -> None:
        held = self._granted.get(lock.resource, [])
        for i, candidate in enumerate(held):
            if candidate.lock_id == lock.lock_id:
                del held[i]
                break
        else:
            raise LockError(f"lock {lock.lock_id} on {lock.resource!r} is not held")
        if not held:
            self._granted.pop(lock.resource, None)
        self._promote(lock.resource)

    def release_owner(self, owner: Hashable) -> int:
        """Release every lock held by *owner* (client death cleanup)."""
        released = 0
        for resource in list(self._granted):
            for lock in [l for l in self._granted.get(resource, []) if l.owner == owner]:
                self.release(lock)
                released += 1
        return released

    # -- internals ---------------------------------------------------------------
    def _promote(self, resource: Hashable) -> None:
        queue = self._waiting.get(resource, [])
        granted_now: List[_Waiter] = []
        remaining: List[_Waiter] = []
        for waiter in queue:
            lock = waiter.lock
            if not self._conflicts_with_granted(lock) and not any(
                _ranges_overlap(w.lock.byte_range, lock.byte_range)
                and (w.lock.mode is LockMode.EXCLUSIVE or lock.mode is LockMode.EXCLUSIVE)
                for w in remaining
            ):
                self._granted.setdefault(resource, []).append(lock)
                self.grants += 1
                granted_now.append(waiter)
            else:
                remaining.append(waiter)
        if remaining:
            self._waiting[resource] = remaining
        else:
            self._waiting.pop(resource, None)
        for waiter in granted_now:
            if waiter.wake is not None:
                waiter.wake(waiter.lock)
