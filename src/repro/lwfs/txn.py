"""Distributed transactions: the two-phase commit protocol of §3.4.

"A two-phase commit protocol (part of the LWFS API) helps the client to
preserve the atomicity property because it requires all participating
servers to agree on the final state of the system before changes become
permanent."

The :class:`TxnCoordinator` drives participants implementing the small
:class:`TxnParticipant` protocol (``txn_begin/prepare/commit/abort``) —
which :class:`~repro.lwfs.storage_svc.StorageService` and
:class:`~repro.lwfs.naming.NamingService` both do — and journals its own
decisions so recovery can resolve in-doubt participants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, runtime_checkable

from ..errors import TransactionAborted, TransactionError
from .ids import IdFactory, TxnID
from .journal import Journal

__all__ = ["TxnParticipant", "Transaction", "TxnCoordinator"]


@runtime_checkable
class TxnParticipant(Protocol):
    """What a service must implement to join a distributed transaction."""

    def txn_begin(self, txnid: TxnID) -> None: ...

    def txn_prepare(self, txnid: TxnID) -> bool: ...

    def txn_commit(self, txnid: TxnID) -> None: ...

    def txn_abort(self, txnid: TxnID) -> None: ...


@dataclass
class Transaction:
    """Coordinator-side view of one distributed transaction."""

    txnid: TxnID
    participants: List[TxnParticipant] = field(default_factory=list)
    status: str = "active"  # active -> preparing -> committed | aborted

    def joined(self, participant: TxnParticipant) -> bool:
        return any(p is participant for p in self.participants)


class TxnCoordinator:
    """Client-side two-phase-commit driver.

    Synchronous (functional) version; the simulated deployment mirrors the
    same phases over RPC in :mod:`repro.sim.client`.
    """

    def __init__(self, ids: Optional[IdFactory] = None, journal: Optional[Journal] = None) -> None:
        self.ids = ids or IdFactory()
        self.journal = journal
        self._txns: Dict[TxnID, Transaction] = {}

    # -- lifecycle -----------------------------------------------------------
    def begin(self) -> TxnID:
        txnid = self.ids.txn()
        self._txns[txnid] = Transaction(txnid=txnid)
        self._log(txnid, "begin")
        return txnid

    def join(self, txnid: TxnID, participant: TxnParticipant) -> None:
        """Enroll *participant*; begins the txn on it exactly once."""
        txn = self._get(txnid)
        if txn.status != "active":
            raise TransactionError(f"{txnid} is {txn.status}; cannot join")
        if not txn.joined(participant):
            participant.txn_begin(txnid)
            txn.participants.append(participant)

    def end(self, txnid: TxnID) -> None:
        """Run two-phase commit; raises TransactionAborted on any veto."""
        txn = self._get(txnid)
        if txn.status != "active":
            raise TransactionError(f"{txnid} is {txn.status}; cannot commit")
        txn.status = "preparing"
        self._log(txnid, "prepare")

        votes: List[bool] = []
        failed = False
        for participant in txn.participants:
            try:
                votes.append(bool(participant.txn_prepare(txnid)))
            except Exception:  # a dead or broken participant is a NO vote
                votes.append(False)
                failed = True
        if failed or not all(votes):
            self._abort(txn)
            raise TransactionAborted(f"{txnid}: participant vetoed prepare")

        self._log(txnid, "commit")
        for participant in txn.participants:
            participant.txn_commit(txnid)
        txn.status = "committed"
        del self._txns[txnid]

    def abort(self, txnid: TxnID) -> None:
        """Explicit rollback."""
        txn = self._get(txnid)
        if txn.status not in ("active", "preparing"):
            raise TransactionError(f"{txnid} is {txn.status}; cannot abort")
        self._abort(txn)

    def active(self, txnid: TxnID) -> bool:
        return txnid in self._txns

    # -- internals -------------------------------------------------------------
    def _abort(self, txn: Transaction) -> None:
        self._log(txn.txnid, "abort")
        for participant in txn.participants:
            try:
                participant.txn_abort(txn.txnid)
            except Exception:  # noqa: BLE001 - best-effort rollback
                pass
        txn.status = "aborted"
        self._txns.pop(txn.txnid, None)

    def _get(self, txnid: TxnID) -> Transaction:
        try:
            return self._txns[txnid]
        except KeyError:
            raise TransactionError(f"unknown transaction {txnid}") from None

    def _log(self, txnid: TxnID, kind: str) -> None:
        if self.journal is not None:
            self.journal.append(txnid, kind)
