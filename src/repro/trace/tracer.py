"""Structured tracing for simulation runs: spans with causal links.

A :class:`Tracer` attached to a simkernel
:class:`~repro.simkernel.core.Environment` records **spans** — named,
timestamped intervals of simulated time with a parent pointer — so one
checkpoint write shows up as a single causally-linked tree: client write
phase → RPC → server handler → bulk portals transfer → fabric messages →
disk service.  Timestamps are simulated seconds; recording a span never
schedules an event, so an enabled tracer observes the exact same
simulation the un-traced run executes (bit-identical clocks).

Zero overhead when disabled
---------------------------
``Environment.tracer`` is ``None`` by default.  Every instrumentation
site follows the guard pattern (mirroring ``REPRO_FABRIC_FASTPATH``)::

    tracer = env.tracer
    if tracer is not None:
        span = tracer.begin("disk:raid0", kind="disk")
    ...hot path...
    if tracer is not None:
        tracer.end(span)

so a disabled run pays one attribute load and a ``None`` check.

Context propagation
-------------------
Within one simulation process, ``yield from`` chains share the ambient
span stored on the active :class:`~repro.simkernel.process.Process`
(:meth:`Tracer.push` / :meth:`Tracer.pop`).  Newly spawned processes
inherit the spawner's ambient span, which carries context across
``env.process(...)`` boundaries (pipelined chunk writers, portals
transfers).  Crossing the simulated wire — where no Python call chain
exists — the RPC layer copies the caller's span id into the request
(``RpcRequest.trace_parent``) and the server opens its handler span
under it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Span", "Tracer"]

#: Sentinel: derive the parent from the active process's ambient span.
_AMBIENT = object()


class Span:
    """One traced interval of simulated time.

    ``start``/``end`` are simulated seconds; ``parent_id`` links the span
    into a causal tree (``None`` for roots).  ``attrs`` holds small
    structured details (byte counts, cache outcome, queue time).
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "kind",
        "node",
        "service",
        "op",
        "start",
        "end",
        "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        node: Optional[int],
        service: Optional[str],
        op: Optional[str],
        start: float,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.node = node
        self.service = service
        self.op = op
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = None

    @property
    def dur(self) -> float:
        """Span duration in simulated seconds (0.0 while unfinished)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def key(self) -> tuple:
        """Canonical comparable form (used by the determinism tests)."""
        attrs = tuple(sorted((self.attrs or {}).items(), key=lambda kv: kv[0]))
        return (
            self.span_id,
            self.parent_id,
            self.name,
            self.kind,
            self.node,
            self.service,
            self.op,
            self.start,
            self.end,
            attrs,
        )

    # Slots-only classes need explicit pickle support; traced trials cross
    # the sweep executor's process-pool boundary.
    def __getstate__(self) -> tuple:
        return tuple(getattr(self, field) for field in self.__slots__)

    def __setstate__(self, state: tuple) -> None:
        for field, value in zip(self.__slots__, state):
            setattr(self, field, value)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Span #{self.span_id} {self.name!r} kind={self.kind} "
            f"[{self.start:.6f}, {self.end if self.end is not None else '...'}]>"
        )


class Tracer:
    """Collects spans for one :class:`Environment`.

    Span ids are allocated from a per-tracer counter in creation order;
    because the simulation itself is deterministic, the id stream — and
    therefore the whole trace — is reproducible bit-for-bit.
    """

    __slots__ = ("env", "spans", "_n")

    def __init__(self, env) -> None:
        self.env = env
        #: Completed spans, in completion order.
        self.spans: List[Span] = []
        self._n = 0

    @classmethod
    def install(cls, env) -> "Tracer":
        """Create a tracer and attach it as ``env.tracer``."""
        tracer = cls(env)
        env.tracer = tracer
        return tracer

    # -- span lifecycle ------------------------------------------------------
    def begin(
        self,
        name: str,
        kind: str = "span",
        node: Optional[int] = None,
        service: Optional[str] = None,
        op: Optional[str] = None,
        parent: Any = _AMBIENT,
        start: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Open a span starting now (or at *start*).

        *parent* defaults to the ambient span of the active process; pass
        an explicit span id (or ``None`` for a root) to override — the RPC
        server side does this with the id carried in the request.
        """
        if parent is _AMBIENT:
            proc = self.env._active_process
            ambient = proc.span if proc is not None else None
            parent_id = ambient.span_id if ambient is not None else None
        else:
            parent_id = parent
        self._n += 1
        span = Span(
            self._n,
            parent_id,
            name,
            kind,
            node,
            service,
            op,
            self.env.now if start is None else start,
        )
        if attrs:
            span.attrs = attrs
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close *span* at the current simulated time and record it."""
        span.end = self.env.now
        if attrs:
            if span.attrs is None:
                span.attrs = attrs
            else:
                span.attrs.update(attrs)
        self.spans.append(span)
        return span

    def record(self, name: str, start: float, **kwargs: Any) -> Span:
        """Record an already-elapsed interval ``[start, now]`` in one call."""
        return self.end(self.begin(name, start=start, **kwargs))

    # -- ambient context -----------------------------------------------------
    def push(self, name: str, **kwargs: Any) -> Tuple[Span, Optional[Span]]:
        """Open a span and make it the active process's ambient span.

        Returns ``(span, previous_ambient)``; hand both back to
        :meth:`pop` (typically from a ``finally`` block).
        """
        span = self.begin(name, **kwargs)
        proc = self.env._active_process
        prev = None
        if proc is not None:
            prev = proc.span
            proc.span = span
        return span, prev

    def pop(self, span: Span, prev: Optional[Span], **attrs: Any) -> Span:
        """Close a pushed span and restore the previous ambient span."""
        proc = self.env._active_process
        if proc is not None:
            proc.span = prev
        return self.end(span, **attrs)

    def current_id(self) -> Optional[int]:
        """Span id of the active process's ambient span, if any."""
        proc = self.env._active_process
        ambient = proc.span if proc is not None else None
        return ambient.span_id if ambient is not None else None

    def __len__(self) -> int:
        return len(self.spans)
