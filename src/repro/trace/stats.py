"""Kernel-level run statistics, promoted to a stable surface.

``events_processed`` and ``peak_queue_len`` started life as ad-hoc
attributes on :class:`~repro.simkernel.core.Environment`; every consumer
(benchmarks, the sweep executor, trace exports) now reads them through
:func:`kernel_stats` so they land in ``BENCH_sweep.json`` and trace
metadata under one set of key names.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["kernel_stats"]


def kernel_stats(env) -> Dict[str, float]:
    """Uniform simkernel statistics for one environment."""
    stats = {
        "events_processed": env.events_processed,
        "events_skipped_cancelled": env.events_skipped_cancelled,
        # Flow completions retired by the analytic fast-forward engine
        # instead of per-chunk discrete events (repro.network.flow).
        "events_fast_forwarded": getattr(env, "events_fast_forwarded", 0),
        # Conservative-sync barrier crossings in sharded runs
        # (repro.bench.shard); 0 in single-process runs.
        "window_barriers": getattr(env, "window_barriers", 0),
        "peak_event_queue": env.peak_queue_len,
        "sim_seconds": env.now,
    }
    flows = getattr(env, "_flow_network", None)
    if flows is not None:
        stats["flows_active"] = flows.flows_peak
        stats["rate_recomputes"] = flows.rate_recomputes
    return stats
