"""Trace exporters: Chrome trace-event JSON, text timeline, summaries.

The JSON exporter emits the Chrome trace-event format (the ``{"traceEvents":
[...]}`` object form) consumable by ``chrome://tracing``, Perfetto's legacy
importer, and Catapult.  Simulated seconds become microseconds (the format's
native unit); each simulated node becomes a ``pid`` and each service/kind
lane on that node becomes a ``tid``, named via ``"M"`` metadata events.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "format_timeline",
    "summarize",
]

#: Chrome trace-event phase codes this exporter emits / the validator allows.
_KNOWN_PHASES = set("BEXIiCbenSTpFsfPMO()")


def _spans_of(trace: Any) -> Sequence[Span]:
    return trace.spans if isinstance(trace, Tracer) else trace


def chrome_trace(trace: Any, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Render a tracer (or span list) as a Chrome trace-event document."""
    spans = _spans_of(trace)
    events: List[Dict[str, Any]] = []
    # (pid, lane-name) -> tid; lanes group spans by service (else kind).
    tids: Dict[tuple, int] = {}
    named_pids: set = set()

    body: List[Dict[str, Any]] = []
    for span in spans:
        pid = span.node if isinstance(span.node, int) else -1
        lane = span.service or span.kind
        key = (pid, lane)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            if pid not in named_pids:
                named_pids.add(pid)
                events.append({
                    "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": f"node {pid}" if pid >= 0 else "host"},
                })
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": lane},
            })
        args: Dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "kind": span.kind,
        }
        if span.op is not None:
            args["op"] = span.op
        if span.attrs:
            args.update(span.attrs)
        body.append({
            "ph": "X",
            "name": span.name,
            "cat": span.kind,
            "ts": span.start * 1e6,
            "dur": span.dur * 1e6,
            "pid": pid,
            "tid": tid,
            "args": args,
        })
    events.extend(body)
    doc: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if meta:
        doc["otherData"] = meta
    return doc


def write_chrome_trace(trace: Any, path: str,
                       meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Export to *path*; returns the document for further inspection."""
    doc = chrome_trace(trace, meta=meta)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    return doc


def validate_chrome_trace(doc: Any) -> List[str]:
    """Check *doc* against the Chrome trace-event schema; return errors.

    Accepts both the object form (``{"traceEvents": [...]}``) and the bare
    array form.  An empty list means the document is valid.
    """
    errors: List[str] = []
    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return ["object form requires a 'traceEvents' array"]
    elif isinstance(doc, list):
        events = doc
    else:
        return [f"top level must be an object or array, got {type(doc).__name__}"]

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _KNOWN_PHASES:
            errors.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str):
            errors.append(f"{where}: missing event name")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: args must be an object")
        for field in ("pid", "tid"):
            if field in ev and not isinstance(ev[field], int):
                errors.append(f"{where}: {field} must be an integer")
        if ph == "M":
            continue  # metadata events carry no timestamps
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: ts must be a number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)):
                errors.append(f"{where}: complete event needs numeric dur")
            elif dur < 0:
                errors.append(f"{where}: negative dur {dur}")
        if len(errors) >= 20:
            errors.append("... (stopping after 20 errors)")
            break
    return errors


def _children_index(spans: Sequence[Span]) -> Dict[Optional[int], List[Span]]:
    kids: Dict[Optional[int], List[Span]] = {}
    ids = {s.span_id for s in spans}
    for span in spans:
        parent = span.parent_id if span.parent_id in ids else None
        kids.setdefault(parent, []).append(span)
    for siblings in kids.values():
        siblings.sort(key=lambda s: (s.start, s.span_id))
    return kids


def format_timeline(trace: Any, max_lines: int = 120) -> str:
    """Plain-text span tree: start, duration, name, key attrs per line."""
    spans = _spans_of(trace)
    if not spans:
        return "(empty trace)"
    kids = _children_index(spans)
    lines: List[str] = []
    truncated = [0]

    def walk(span: Span, depth: int) -> None:
        if len(lines) >= max_lines:
            truncated[0] += 1
            return
        extra = ""
        if span.attrs:
            brief = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
            extra = f"  [{brief}]"
        where = f"n{span.node}" if span.node is not None else "-"
        lines.append(
            f"{span.start * 1e3:10.3f}ms +{span.dur * 1e3:9.3f}ms "
            f"{'  ' * depth}{span.name} ({where}){extra}"
        )
        for child in kids.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in kids.get(None, ()):
        walk(root, 0)
    if truncated[0]:
        lines.append(f"... ({truncated[0]} more spans)")
    return "\n".join(lines)


def summarize(trace: Any) -> Dict[str, Any]:
    """Compact per-kind statistics, sized to live inside BENCH_sweep.json."""
    spans = _spans_of(trace)
    by_kind: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        row = by_kind.setdefault(span.kind, {"count": 0, "total_s": 0.0, "max_s": 0.0})
        row["count"] += 1
        row["total_s"] += span.dur
        if span.dur > row["max_s"]:
            row["max_s"] = span.dur
    for row in by_kind.values():
        row["total_s"] = round(row["total_s"], 9)
        row["max_s"] = round(row["max_s"], 9)
    return {"spans": len(spans), "by_kind": dict(sorted(by_kind.items()))}
