"""Per-phase bottleneck attribution from a span tree.

A :class:`PhaseReport` answers the question the paper's figures argue
about: *which resource bounded each checkpoint phase?*  For every phase
(create, write, sync, close) it takes the critical rank — the one whose
phase span is longest — and sweeps its span subtree, attributing every
instant of the phase to the highest-priority resource active at that
moment:

    disk-service > disk-queue > server-wait > verify-cache
                 > network > rpc-host > collective

``disk-service`` is media time, ``disk-queue`` is time queued behind the
RAID controller, ``server-wait`` is thread/buffer/extent-lock waits,
``verify-cache`` is authorization verify time (hit or miss), ``network``
is fabric/bulk transfer time, ``rpc-host`` is residual time inside an RPC
(host-side request processing), and ``collective`` is time blocked in a
barrier/bcast/gather.  Overlaps (a disk write inside an RPC inside the
phase) resolve to the highest-priority resource, so nothing is counted
twice and the per-phase breakdown sums to at most the wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .tracer import Span, Tracer

__all__ = ["PhaseReport", "PhaseRow"]

#: Attribution priority, highest first.
_PRIORITY = (
    "disk-service",
    "disk-queue",
    "server-wait",
    "verify-cache",
    "network",
    "rpc-host",
    "collective",
)
_RANK = {cat: i for i, cat in enumerate(_PRIORITY)}

#: Canonical phase display order.
_PHASE_ORDER = ("create", "write", "sync", "close")


def _intervals_of(span: Span) -> List[Tuple[float, float, str]]:
    """Map one span to its attribution intervals (may be empty)."""
    kind = span.kind
    if kind == "disk":
        queue = float((span.attrs or {}).get("queue", 0.0))
        acquire = span.start + queue
        out = []
        if acquire > span.start:
            out.append((span.start, acquire, "disk-queue"))
        if span.end > acquire:
            out.append((acquire, span.end, "disk-service"))
        return out
    if kind == "wait":
        return [(span.start, span.end, "server-wait")]
    if kind == "verify":
        return [(span.start, span.end, "verify-cache")]
    if kind in ("xfer", "bulk"):
        return [(span.start, span.end, "network")]
    if kind in ("rpc", "server"):
        return [(span.start, span.end, "rpc-host")]
    if kind == "coll":
        return [(span.start, span.end, "collective")]
    return []


@dataclass
class PhaseRow:
    """Attribution of one phase on its critical (slowest) rank."""

    phase: str
    rank: Optional[int]
    wall_s: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    bounded_by: str = ""
    attributed: float = 0.0  # fraction of wall_s covered by named resources

    def as_dict(self) -> Dict[str, Any]:
        return {
            "phase": self.phase,
            "rank": self.rank,
            "wall_s": self.wall_s,
            "breakdown": {k: round(v, 9) for k, v in self.breakdown.items()},
            "bounded_by": self.bounded_by,
            "attributed": round(self.attributed, 6),
        }


class PhaseReport:
    """Wall-clock attribution for every phase found in a trace."""

    def __init__(self, rows: List[PhaseRow]) -> None:
        self.rows = rows

    @property
    def total_wall_s(self) -> float:
        return sum(row.wall_s for row in self.rows)

    @property
    def attributed(self) -> float:
        """Overall fraction of phase wall-clock attributed to resources."""
        total = self.total_wall_s
        if total <= 0:
            return 0.0
        covered = sum(row.attributed * row.wall_s for row in self.rows)
        return covered / total

    @classmethod
    def from_trace(cls, trace: Any) -> "PhaseReport":
        spans: Sequence[Span] = trace.spans if isinstance(trace, Tracer) else trace
        children: Dict[int, List[Span]] = {}
        for span in spans:
            if span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)

        # Group phase spans by op; the critical rank is the longest one.
        phases: Dict[str, List[Span]] = {}
        for span in spans:
            if span.kind == "phase":
                phases.setdefault(span.op or span.name, []).append(span)

        rows: List[PhaseRow] = []
        names = [p for p in _PHASE_ORDER if p in phases]
        names += [p for p in sorted(phases) if p not in _PHASE_ORDER]
        for name in names:
            critical = max(phases[name], key=lambda s: s.dur)
            rows.append(cls._attribute(critical, name, children))
        return cls(rows)

    @staticmethod
    def _attribute(phase: Span, name: str, children: Dict[int, List[Span]]) -> PhaseRow:
        rank = (phase.attrs or {}).get("rank")
        wall = phase.dur
        row = PhaseRow(phase=name, rank=rank, wall_s=wall)
        if wall <= 0:
            row.attributed = 1.0  # nothing to attribute
            row.bounded_by = "-"
            return row

        # Collect the subtree's attribution intervals, clipped to the phase.
        intervals: List[Tuple[float, float, str]] = []
        stack = [phase]
        while stack:
            for child in children.get(stack.pop().span_id, ()):
                stack.append(child)
                for lo, hi, cat in _intervals_of(child):
                    lo = max(lo, phase.start)
                    hi = min(hi, phase.end)
                    if hi > lo:
                        intervals.append((lo, hi, cat))

        # Sweep: at each elementary segment, charge the highest-priority
        # active category.
        edges = sorted({phase.start, phase.end}
                       | {t for lo, hi, _ in intervals for t in (lo, hi)})
        breakdown: Dict[str, float] = {}
        covered = 0.0
        for lo, hi in zip(edges, edges[1:]):
            active = [cat for a, b, cat in intervals if a <= lo and b >= hi]
            if not active:
                continue
            winner = min(active, key=_RANK.__getitem__)
            breakdown[winner] = breakdown.get(winner, 0.0) + (hi - lo)
            covered += hi - lo

        row.breakdown = dict(
            sorted(breakdown.items(), key=lambda kv: kv[1], reverse=True)
        )
        row.attributed = covered / wall
        row.bounded_by = next(iter(row.breakdown), "(unattributed)")
        return row

    # -- rendering -----------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "phases": [row.as_dict() for row in self.rows],
            "total_wall_s": round(self.total_wall_s, 9),
            "attributed": round(self.attributed, 6),
        }

    def format(self) -> str:
        if not self.rows:
            return "(no phase spans in trace)"
        lines = [
            f"{'phase':<8} {'rank':>4} {'wall':>10}  {'bounded by':<14} breakdown",
            "-" * 76,
        ]
        for row in self.rows:
            parts = ", ".join(
                f"{cat} {val / row.wall_s:.0%}" if row.wall_s > 0 else cat
                for cat, val in row.breakdown.items()
            )
            lines.append(
                f"{row.phase:<8} {('-' if row.rank is None else row.rank):>4} "
                f"{row.wall_s * 1e3:>8.3f}ms  {row.bounded_by:<14} {parts}"
            )
        lines.append(
            f"\n{self.attributed:.1%} of {self.total_wall_s * 1e3:.3f}ms phase "
            f"wall-clock attributed to named resources"
        )
        return "\n".join(lines)
