"""``repro.trace`` — structured tracing for the simulator.

Attach a :class:`Tracer` to an environment (``Tracer.install(env)``)
before running, and every instrumented layer — RPC, portals, fabric,
disks, verify cache, checkpoint phases, collectives — records causally
linked spans.  Export with :func:`chrome_trace` (Chrome/Perfetto JSON) or
:func:`format_timeline` (text), and attribute phase wall-clock with
:class:`PhaseReport`.  With no tracer installed the instrumentation costs
one attribute check per site.
"""

from .export import (
    chrome_trace,
    format_timeline,
    summarize,
    validate_chrome_trace,
    write_chrome_trace,
)
from .phases import PhaseReport, PhaseRow
from .stats import kernel_stats
from .tracer import Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "chrome_trace",
    "write_chrome_trace",
    "validate_chrome_trace",
    "format_timeline",
    "summarize",
    "kernel_stats",
    "PhaseReport",
    "PhaseRow",
]
