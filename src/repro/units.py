"""Unit helpers.

Conventions used throughout the project:

* time is in **seconds** (floats),
* data sizes are in **bytes** (ints),
* bandwidth is in **bytes/second**,
* throughput in the paper's figures is reported in MB/s (decimal within the
  plots of the original report used binary MB; we follow the common HPC
  convention of MB = 2**20 bytes, matching "each node writes 512 MB").
"""

from __future__ import annotations

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "KB",
    "MB",
    "GB",
    "TB",
    "USEC",
    "MSEC",
    "mb_per_s",
    "gb_per_s",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
]

KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4

# Binary-flavored aliases used by the paper's prose ("512 MB", "400 MB/s").
KB = KiB
MB = MiB
GB = GiB
TB = TiB

USEC = 1e-6
MSEC = 1e-3


def mb_per_s(value: float) -> float:
    """Convert MB/s to bytes/s."""
    return value * MiB


def gb_per_s(value: float) -> float:
    """Convert GB/s to bytes/s."""
    return value * GiB


def fmt_bytes(nbytes: float) -> str:
    """Human-readable byte count ('512.0 MiB')."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_time(seconds: float) -> str:
    """Human-readable duration ('3.2 ms', '1.5 s', '2.1 min')."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def fmt_rate(bytes_per_s: float) -> str:
    """Human-readable bandwidth ('421.1 MB/s')."""
    return f"{bytes_per_s / MiB:.1f} MB/s"
