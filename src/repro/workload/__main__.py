"""The ``traffic-quick`` gate: ``python -m repro.workload``.

Five checks, each cheap enough for CI, each guarding a contract the
open-loop traffic engine documents:

1. **Spec round-trip** — :func:`~repro.workload.diurnal_mixed`
   survives ``to_doc -> json -> from_doc`` exactly, and its
   :meth:`~repro.workload.WorkloadSpec.signature` is stable across the
   round trip (the trial cache keys on it).
2. **Determinism** — the same seeded collapsed trial run twice is
   bit-identical on every reported statistic.
3. **Kill switch** — with every class multiplicity forced to 1,
   ``REPRO_TENANT_COLLAPSE=0`` (here: ``tenant_collapse=False``) and
   the collapsed path produce *exactly* equal results: collapsing is
   pure mechanism, not a different workload.
4. **Collapse accuracy** — at class sizes of 10^3 (multiplicity up to
   63) the collapsed run stays within :data:`ACCURACY_TOL` of the
   uncollapsed reference on per-class goodput, p50, and p99.
5. **Scale invariance** — growing the tenant population 100x at
   constant offered rate leaves the session count unchanged and the
   event count within :data:`EVENT_RATIO_LIMIT`; simulated users are
   free, traffic is what costs.

Results land in ``results/traffic_quick.json``.  Exit status is the
number of failed checks.
"""

from __future__ import annotations

import json
import os
import sys
from dataclasses import replace
from typing import Any, Dict, List

#: Collapsed-vs-uncollapsed relative error bound (goodput, p50, p99).
ACCURACY_TOL = 0.01
#: Event-count growth allowed for a 100x tenant population at equal rate.
EVENT_RATIO_LIMIT = 1.05

#: Per-class statistics compared between runs.
_FIELDS = ("ops", "goodput_mb_s", "latency_p50", "latency_p99")


def _results_dir() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(os.path.join(here, "..", "..", "..", "results"))


def _gate_spec(tenants: int, reps: int, quantum: float = 0.005):
    """The accuracy-gate mix: jitter-free costs, fixed sizes for the
    latency-checked classes, moderate utilization — the regime where
    collapse error is structural, not measurement noise."""
    from .spec import TenantClass, WorkloadSpec

    return WorkloadSpec(
        classes=(
            TenantClass(
                name="meta", tenants=tenants, rate=500.0, arrival="poisson",
                op_mix=(("create", 3.0), ("getattr", 2.0)),
                size_dist="fixed", size_bytes=4096, representatives=reps,
            ),
            TenantClass(
                name="readers", tenants=tenants, rate=300.0, arrival="diurnal",
                diurnal_profile=(0.5, 1.5, 1.0), op_mix=(("read", 1.0),),
                size_dist="fixed", size_bytes=65536, representatives=reps,
            ),
        ),
        horizon=4.0, quantum=quantum, warmup=0.4,
    )


def _run(spec, collapse: bool, seed: int = 11):
    from ..sim.config import RunOptions, SimConfig
    from .engine import run_workload_trial

    cfg = replace(SimConfig(), cost_jitter=0.0)
    opts = RunOptions(tenant_collapse=collapse, trace=False, metrics=False)
    return run_workload_trial(
        workload=spec, n_servers=4, seed=seed, config=cfg, options=opts
    )


def _rows(trial) -> Dict[str, float]:
    picked = {
        k: v for k, v in trial.extra.items()
        if k.startswith("wl.") and k.rsplit(".", 1)[1] in _FIELDS
    }
    picked["throughput_mb_s"] = trial.throughput_mb_s
    picked["max_elapsed"] = trial.max_elapsed
    return picked


def _check_roundtrip() -> Dict[str, Any]:
    from .spec import WorkloadSpec, diurnal_mixed

    spec = diurnal_mixed(tenants=10_000, rate=200.0, horizon=60.0, quantum=1.0)
    doc = json.loads(json.dumps(spec.to_doc()))
    back = WorkloadSpec.from_doc(doc)
    return {
        "check": "spec-roundtrip",
        "ok": back == spec and back.signature() == spec.signature(),
        "signature": spec.signature(),
        "classes": len(spec.classes),
        "total_tenants": spec.total_tenants,
    }


def _check_determinism() -> Dict[str, Any]:
    spec = _gate_spec(tenants=200, reps=8)
    a = _rows(_run(spec, collapse=True))
    b = _rows(_run(spec, collapse=True))
    mismatched = sorted(k for k in a if a[k] != b[k])
    return {
        "check": "determinism",
        "ok": not mismatched,
        "stats_compared": len(a),
        "mismatched": mismatched,
    }


def _check_kill_switch() -> Dict[str, Any]:
    # representatives == tenants -> every class multiplicity is 1.
    spec = _gate_spec(tenants=24, reps=24)
    on = _rows(_run(spec, collapse=True))
    off = _rows(_run(spec, collapse=False))
    mismatched = sorted(k for k in on if on[k] != off[k])
    return {
        "check": "kill-switch",
        "ok": not mismatched,
        "stats_compared": len(on),
        "mismatched": mismatched,
    }


def _check_accuracy() -> Dict[str, Any]:
    spec = _gate_spec(tenants=1000, reps=16)
    coll = _run(spec, collapse=True)
    ref = _run(spec, collapse=False)
    worst, worst_key = 0.0, ""
    for k, rv in _rows(ref).items():
        cv = _rows(coll)[k]
        rel = abs(cv - rv) / max(abs(rv), 1e-12)
        if rel > worst:
            worst, worst_key = rel, k
    return {
        "check": "collapse-accuracy",
        "ok": worst <= ACCURACY_TOL,
        "worst_rel_err": round(worst, 6),
        "worst_stat": worst_key,
        "tolerance": ACCURACY_TOL,
        "max_class_multiplicity": coll.extra["max_class_multiplicity"],
        "sessions_collapsed": coll.extra["sessions_simulated"],
        "sessions_reference": ref.extra["sessions_simulated"],
    }


def _check_scale_invariance() -> Dict[str, Any]:
    small = _run(_gate_spec(tenants=1000, reps=16), collapse=True)
    big = _run(_gate_spec(tenants=100_000, reps=16), collapse=True)
    ratio = big.extra["events_processed"] / max(small.extra["events_processed"], 1)
    return {
        "check": "scale-invariance",
        "ok": (
            big.extra["sessions_simulated"] == small.extra["sessions_simulated"]
            and ratio <= EVENT_RATIO_LIMIT
        ),
        "tenants": [1000 * 2, 100_000 * 2],
        "sessions": [small.extra["sessions_simulated"],
                     big.extra["sessions_simulated"]],
        "event_ratio": round(ratio, 4),
        "limit": EVENT_RATIO_LIMIT,
    }


def main() -> int:
    checks: List[Dict[str, Any]] = [
        _check_roundtrip(),
        _check_determinism(),
        _check_kill_switch(),
        _check_accuracy(),
        _check_scale_invariance(),
    ]
    results_dir = _results_dir()
    os.makedirs(results_dir, exist_ok=True)
    out = {
        "gate": "traffic-quick",
        "ok": all(c["ok"] for c in checks),
        "checks": checks,
    }
    quick_path = os.path.join(results_dir, "traffic_quick.json")
    with open(quick_path, "w", encoding="utf-8") as fh:
        json.dump(out, fh, indent=2)
        fh.write("\n")

    failed = [c for c in checks if not c["ok"]]
    for c in checks:
        status = "ok  " if c["ok"] else "FAIL"
        detail = {k: v for k, v in c.items() if k not in ("check", "ok")}
        print(f"[{status}] {c['check']}: {json.dumps(detail, default=str)}")
    print(f"wrote {quick_path}")
    return len(failed)


if __name__ == "__main__":
    sys.exit(main())
