"""Open-loop multi-tenant traffic engine with tenant-class collapsing.

The engine drives a :class:`~repro.workload.spec.WorkloadSpec` against
one shared LWFS deployment.  Two ideas make 10^6 simulated tenants run
in minutes instead of days:

**Arrival-batch aggregation.**  Arrivals are drawn per (class, quantum)
from the class-aggregate process — one ``rng.poisson`` per quantum, not
one wake-up event per tenant — and quanta with zero arrivals are
skipped with a single timeout, so an idle diurnal trough costs nothing.

**Tenant-class collapsing.**  Tenants of one class are interchangeable
up to which storage server their objects live on, so the engine
simulates one *representative session* per contiguous tenant block and
issues each quantum's arrivals as weighted batched operations: a batch
of ``k`` arrivals for (block, op, server) is one RPC whose server-side
service defers the batch's residual work (``defer=True``) — the reply
returns after one arrival's service, matching the uncollapsed
population whose concurrent weight-1 ops ride separate CPU cores —
while the representative's capability carries the block's tenant
multiplicity (``cap_weight``) through the verify cache and revocation
blast radius.

**Common random numbers.**  Both modes draw the same per-quantum
arrival counts, tenant assignments, op picks, and sizes from the same
per-class substreams, and group arrivals by ``(tenant_id //
block_width, op, home_server)``.  With collapsing off the block width
is 1, so the grouping, the sessions, and every subsequent event are
*identical* — ``REPRO_TENANT_COLLAPSE=0`` is bit-for-bit, and the
collapse error at width > 1 is structural (measured at < 1% on goodput
and p99 by the accuracy gate), not statistical drift.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ReproError
from ..lwfs.capabilities import OpMask
from ..machine.presets import dev_cluster
from ..machine.spec import MachineSpec
from ..sim.cluster import SimCluster
from ..sim.collapse import class_block_width, tenant_class_plan
from ..sim.config import RunOptions, SimConfig
from ..sim.deployment import LWFSDeployment
from ..simkernel.monitor import Tally
from ..storage.data import SyntheticData
from ..units import MiB
from .spec import OPS, TenantClass, WorkloadSpec

__all__ = ["WorkloadEngine", "auto_representatives", "run_workload_trial"]

#: Auto-sizing bounds for representatives per class (collapsed mode):
#: enough sessions to spread load across servers and keep batch weights
#: moderate, few enough that the event count stays scale-invariant.
MIN_REPRESENTATIVES = 4
MAX_REPRESENTATIVES = 64

#: Ops that move bytes (the others are metadata-only).
_DATA_OPS = frozenset(("read", "write"))

#: Ceiling on latency points recorded per merged batch: a weight-k
#: batch contributes at most this many (value, weight) segment means,
#: so the latency tally grows with *batches*, not arrivals.
_LAT_POINTS = 8


def auto_representatives(cls: TenantClass, spec: WorkloadSpec) -> int:
    """Session count for a collapsed class when the spec leaves it auto.

    Scales with the per-quantum arrival volume (so batch weights stay
    moderate) but never with the tenant count — that invariance is the
    whole point of collapsing.
    """
    if cls.representatives:
        return min(cls.representatives, cls.tenants)
    per_quantum = cls.rate * spec.quantum
    reps = int(math.ceil(per_quantum / 16.0))
    return max(MIN_REPRESENTATIVES, min(MAX_REPRESENTATIVES, reps, cls.tenants))


def _arrival_counts(cls: TenantClass, spec: WorkloadSpec, rng) -> np.ndarray:
    """Arrivals per quantum for the whole class, from its count substream."""
    n_quanta = int(math.ceil(spec.horizon / spec.quantum))
    mean = cls.rate * spec.quantum
    if cls.arrival == "poisson":
        return rng.poisson(mean, n_quanta)
    if cls.arrival == "diurnal":
        profile = np.asarray(cls.diurnal_profile, dtype=float)
        profile = profile / profile.mean()  # normalize: mean rate == cls.rate
        lam = mean * profile[np.arange(n_quanta) % len(profile)]
        return rng.poisson(lam)
    # Heavy-tailed: Lomax inter-arrival gaps with mean 1/rate.  Draw gap
    # batches until the horizon is covered, then histogram into quanta.
    scale = (cls.pareto_alpha - 1.0) / cls.rate
    horizon = n_quanta * spec.quantum
    times: List[np.ndarray] = []
    t = 0.0
    batch = max(256, int(cls.rate * horizon * 1.25))
    while t < horizon:
        gaps = rng.pareto(cls.pareto_alpha, batch) * scale
        arrivals = t + np.cumsum(gaps)
        times.append(arrivals)
        t = float(arrivals[-1])
    all_times = np.concatenate(times)
    all_times = all_times[all_times < horizon]
    return np.bincount(
        (all_times / spec.quantum).astype(np.int64), minlength=n_quanta
    )[:n_quanta]


@dataclass
class _Session:
    """One representative endpoint: a tenant block's shared identity."""

    block: int
    start: int
    mult: int  # how many real tenants this session stands for
    client: object = None
    cred: object = None
    cid: object = None
    cap: object = None
    oids: Dict[int, object] = field(default_factory=dict)


@dataclass
class _ClassState:
    """Per-class engine state: plan, substreams, sessions, statistics."""

    cls: TenantClass
    index: int
    width: int
    counts: np.ndarray
    assign_rng: object
    ops_rng: object
    sizes_rng: object
    offs_rng: object
    sessions: List[_Session]
    server_offset: int
    mix_ops: Tuple[str, ...]
    mix_cum: np.ndarray
    latency: Tally
    bytes_moved: float = 0.0
    ops_done: int = 0
    ops_failed: int = 0
    retries: int = 0


class WorkloadEngine:
    """Drive one :class:`WorkloadSpec` against a live LWFS deployment."""

    def __init__(
        self,
        cluster: SimCluster,
        deployment: LWFSDeployment,
        spec: WorkloadSpec,
        collapse: bool = True,
    ) -> None:
        self.cluster = cluster
        self.deployment = deployment
        self.spec = spec
        self.collapse = collapse
        self.env = cluster.env
        self.n_servers = deployment.n_servers
        self.t0 = 0.0
        self.t_end = 0.0
        self._outstanding = 0
        self._drained: Optional[object] = None
        self._first_error: Optional[BaseException] = None
        self.classes: List[_ClassState] = []

        rng = cluster.rng
        for index, cls in enumerate(spec.classes):
            if collapse:
                reps = auto_representatives(cls, spec)
            else:
                reps = cls.tenants
            width = class_block_width(cls.tenants, reps)
            plan = tenant_class_plan(cls.tenants, reps)
            mix = cls.mix()
            state = _ClassState(
                cls=cls,
                index=index,
                width=width,
                counts=_arrival_counts(cls, spec, rng.stream(f"wl.{cls.name}.counts")),
                assign_rng=rng.stream(f"wl.{cls.name}.assign"),
                ops_rng=rng.stream(f"wl.{cls.name}.ops"),
                sizes_rng=rng.stream(f"wl.{cls.name}.sizes"),
                offs_rng=rng.stream(f"wl.{cls.name}.offs"),
                sessions=[
                    _Session(block=b, start=start, mult=mult)
                    for b, (start, mult) in enumerate(plan)
                ],
                # Interleave classes across servers so class 0 does not
                # pin server 0's queue in every mix.
                server_offset=(index * 7) % max(1, self.n_servers),
                mix_ops=tuple(op for op, _ in mix),
                mix_cum=np.cumsum([share for _, share in mix]),
                latency=Tally(f"wl.{cls.name}.latency", keep_samples=True),
            )
            self.classes.append(state)

    # -- session lifecycle -----------------------------------------------------
    def _home_server(self, state: _ClassState, tid: int) -> int:
        return (state.server_offset + tid) % self.n_servers

    def _touched_servers(self, state: _ClassState, sess: _Session) -> List[int]:
        if sess.mult >= self.n_servers:
            return list(range(self.n_servers))
        return sorted(
            {self._home_server(state, t) for t in range(sess.start, sess.start + sess.mult)}
        )

    def _setup_session(self, state: _ClassState, sess: _Session):
        """Acquire identity + pre-create this block's objects.

        One credential, container, and capability per representative —
        distinct tenants hold distinct capabilities, which is what the
        weighted verify cache and the revocation blast radius account
        for via ``cap_weight``.  A warm-up ``getattr`` per touched
        server moves the verify-cache cold miss out of the measured
        window in *both* modes.
        """
        client = sess.client
        sess.cred = yield from client.get_cred("alice", "alice-password")
        sess.cid = yield from client.create_container(sess.cred)
        sess.cap = yield from client.get_caps(sess.cred, sess.cid, OpMask.ALL)
        seed_bytes = min(2 * state.cls.size_bytes, self.cluster.config.chunk_bytes)
        for server in self._touched_servers(state, sess):
            oid = yield from client.create_object(sess.cap, server)
            sess.oids[server] = oid
            if any(op in _DATA_OPS for op in state.mix_ops):
                # Reads need bytes on disk; seed a small extent once.
                yield from client.write(sess.cap, oid, SyntheticData(seed_bytes, seed=server))
            yield from client.get_attrs(sess.cap, oid)

    # -- arrival drivers -------------------------------------------------------
    def _draw_sizes(self, state: _ClassState, n: int) -> np.ndarray:
        cls = state.cls
        if cls.size_dist == "fixed":
            return np.full(n, float(cls.size_bytes))
        if cls.size_dist == "uniform":
            return state.sizes_rng.uniform(0.5 * cls.size_bytes, 1.5 * cls.size_bytes, n)
        # Lognormal with mean == size_bytes (sigma fixed at 0.5).
        sigma = 0.5
        mu = math.log(cls.size_bytes) - 0.5 * sigma * sigma
        return state.sizes_rng.lognormal(mu, sigma, n)

    def _class_driver(self, state: _ClassState):
        """Open-loop arrivals for one class: batch, group, fire, move on."""
        env = self.env
        quantum = self.spec.quantum
        n_ops = len(state.mix_ops)
        active = np.flatnonzero(state.counts)
        for q in active:
            target = self.t0 + float(q) * quantum
            if env.now < target:
                # Idle-gap skip: one timeout to the next active quantum.
                yield env.timeout(target - env.now)
            n = int(state.counts[q])
            tids = state.assign_rng.integers(0, state.cls.tenants, size=n)
            picks = state.ops_rng.random(n)
            sizes = self._draw_sizes(state, n)
            # Sub-quantum arrival offsets: without them every arrival of
            # the window would fire at the same instant, and the
            # uncollapsed reference would measure a synchronization
            # queueing spike that real open-loop traffic (and the
            # collapsed batch) never sees.
            offs = state.offs_rng.random(n) * quantum
            ops = np.searchsorted(state.mix_cum, picks, side="right")
            ops = np.minimum(ops, n_ops - 1)  # guard the ==1.0 edge draw
            blocks = tids // state.width
            servers = (state.server_offset + tids) % self.n_servers
            key = (blocks * n_ops + ops) * self.n_servers + servers
            order = np.argsort(key, kind="stable")
            uniq, starts, group_n = np.unique(
                key[order], return_index=True, return_counts=True
            )
            size_sums = np.add.reduceat(sizes[order], starts)
            offs_sorted = offs[order]
            delays = np.minimum.reduceat(offs_sorted, starts)
            for key_val, k, size_sum, delay, s0 in zip(
                uniq, group_n, size_sums, delays, starts
            ):
                server = int(key_val % self.n_servers)
                op = state.mix_ops[int((key_val // self.n_servers) % n_ops)]
                block = int(key_val // (self.n_servers * n_ops))
                sess = state.sessions[block]
                length = max(1, int(size_sum / k)) if op in _DATA_OPS else 0
                # Merged batches keep their arrivals' offsets so the
                # per-arrival latency reconstruction can replay them.
                goffs = np.sort(offs_sorted[s0:s0 + k]) if k > 1 else None
                self._outstanding += 1
                env.process(
                    self._issue(state, sess, op, server, int(k), length,
                                float(delay), goffs),
                    name=f"wl:{state.cls.name}:{block}:{op}",
                )

    def _issue(self, state: _ClassState, sess: _Session, op: str, server: int,
               weight: int, length: int, delay: float = 0.0, goffs=None):
        """One weighted batched operation, with revocation recovery.

        The batch fires at its group's earliest arrival offset within
        the quantum; the representative's latency is measured from that
        instant, and a merged batch's remaining arrivals get
        reconstructed latencies (:meth:`_batch_latencies`).
        """
        env = self.env
        if delay > 0.0:
            yield env.timeout(delay)
        start = env.now
        try:
            try:
                yield from self._op(sess, op, server, weight, length)
            except ReproError:
                # Fail-closed capability (revocation storm): re-acquire a
                # fresh serial and re-drive the batch once.
                state.retries += weight
                sess.cap = yield from sess.client.get_caps(
                    sess.cred, sess.cid, OpMask.ALL
                )
                yield from self._op(sess, op, server, weight, length)
        except BaseException as exc:  # noqa: BLE001 - recorded, not fatal mid-run
            state.ops_failed += weight
            if self._first_error is None and not isinstance(exc, ReproError):
                self._first_error = exc
            return
        finally:
            self._outstanding -= 1
            if self._outstanding == 0 and self._drained is not None:
                self._drained.succeed()
                self._drained = None
        elapsed = env.now - start
        state.ops_done += weight
        measured = start - self.t0 >= self.spec.warmup
        if weight == 1 or goffs is None:
            lat_points = ((elapsed, 1),) if weight == 1 else ((elapsed, weight),)
        else:
            lat_points = self._batch_latencies(op, server, length, elapsed, goffs)
        if measured:
            for value, w in lat_points:
                state.latency.observe(value, w)
            if length:
                state.bytes_moved += float(weight * length)
        m = env.metrics
        if m is not None and measured:
            for value, w in lat_points:
                m.observe(f"tenant.{state.cls.name}.latency", value, w)
            if length:
                group = sess.block % 8
                m.count(
                    f"tenant.{state.cls.name}.g{group}.bytes",
                    float(length), weight=float(weight),
                )

    def _op(self, sess: _Session, op: str, server: int, weight: int, length: int):
        client = sess.client
        cap_weight = sess.mult
        if op == "create":
            yield from client.create_object(
                sess.cap, server, weight=weight, defer=True, cap_weight=cap_weight
            )
        elif op == "getattr":
            yield from client.get_attrs(
                sess.cap, sess.oids[server], weight=weight, defer=True,
                cap_weight=cap_weight,
            )
        elif op == "read":
            yield from client.read(
                sess.cap, sess.oids[server], 0, length, weight=weight, defer=True,
                cap_weight=cap_weight,
            )
        elif op == "write":
            yield from client.write(
                sess.cap, sess.oids[server], SyntheticData(length, seed=sess.block),
                weight=weight, defer=True, cap_weight=cap_weight,
            )
        else:  # pragma: no cover - spec validation rejects unknown ops
            raise ValueError(f"unknown op {op!r}")

    def _svc_estimate(self, op: str, server: int, length: int) -> float:
        """Device service time of one op — the serial resource that
        staggers a merged batch's completions.  Metadata ops ride
        multi-core CPU and complete together, so they estimate 0."""
        if op not in _DATA_OPS or not length:
            return 0.0
        dev = self.deployment.storage[server].device.spec
        svc = length / dev.bandwidth
        if op == "read":
            svc += dev.seek_time
        return svc

    def _batch_latencies(self, op: str, server: int, length: int,
                         elapsed: float, goffs: np.ndarray):
        """Reconstruct a merged batch's per-arrival latencies.

        The representative RPC measured ``elapsed`` from the earliest
        arrival; the other k-1 real ops would have arrived at their own
        offsets, seen the same cross-traffic wait, and then queued
        behind their batch predecessors at the device (a Lindley
        recursion with service ``svc``): an op arriving after the queue
        drained costs ``elapsed`` again, a tight burst costs
        ``elapsed + (i-1)*svc``.  The k latencies are folded into at
        most :data:`_LAT_POINTS` (value, weight) segment means so tally
        size stays scale-invariant.
        """
        svc = self._svc_estimate(op, server, length)
        k = len(goffs)
        wait = max(elapsed - svc, 0.0)
        idx = np.arange(1, k + 1, dtype=float)
        dep = svc * (idx + 1.0) + np.maximum.accumulate(goffs + wait - idx * svc)
        dep[0] = goffs[0] + elapsed  # the representative's exact measurement
        lat = np.maximum.accumulate(dep) - goffs
        if k <= _LAT_POINTS:
            return tuple((float(v), 1) for v in lat)
        lat.sort()
        starts = (np.arange(_LAT_POINTS) * k) // _LAT_POINTS
        sizes = np.diff(np.append(starts, k))
        means = np.add.reduceat(lat, starts) / sizes
        return tuple((float(v), int(w)) for v, w in zip(means, sizes))

    # -- run -------------------------------------------------------------------
    def _main(self):
        nodes = self.cluster.compute_nodes
        index = 0
        setups = []
        for state in self.classes:
            for sess in state.sessions:
                sess.client = self.deployment.client(nodes[index % len(nodes)])
                index += 1
                setups.append(
                    self.env.process(
                        self._setup_session(state, sess),
                        name=f"wl-setup:{state.cls.name}:{sess.block}",
                    )
                )
        if setups:
            yield self.env.all_of(setups)
        for proc in setups:
            if isinstance(proc.value, BaseException):
                raise proc.value
        self.t0 = self.env.now
        drivers = [
            self.env.process(self._class_driver(state), name=f"wl-drive:{state.cls.name}")
            for state in self.classes
        ]
        yield self.env.all_of(drivers)
        if self._outstanding:
            self._drained = self.env.event()
            yield self._drained
        self.t_end = self.env.now
        if self._first_error is not None:
            raise self._first_error

    def run(self) -> None:
        done = self.env.process(self._main(), name="wl-main")
        self.env.run(done)

    # -- results ---------------------------------------------------------------
    @property
    def span(self) -> float:
        measured_from = self.t0 + self.spec.warmup
        return max(self.t_end - measured_from, 1e-12)

    def max_class_multiplicity(self) -> int:
        return max(
            (sess.mult for state in self.classes for sess in state.sessions), default=1
        )

    def class_rows(self) -> Dict[str, Dict[str, float]]:
        """Per-class statistics from the engine's own tallies (exact even
        when the metrics subsystem is disabled)."""
        rows: Dict[str, Dict[str, float]] = {}
        for state in self.classes:
            p50, p99 = state.latency.percentiles((0.50, 0.99))
            rows[state.cls.name] = {
                "ops": float(state.latency.count),
                "latency_p50": p50,
                "latency_p99": p99,
                "latency_mean": state.latency.mean,
                "bytes": state.bytes_moved,
                "goodput_mb_s": state.bytes_moved / self.span / MiB,
                "retries": float(state.retries),
                "failed": float(state.ops_failed),
            }
        return rows


def run_workload_trial(
    workload=None,
    n_servers: int = 4,
    seed: int = 0,
    spec: Optional[MachineSpec] = None,
    config: Optional[SimConfig] = None,
    options: Optional[RunOptions] = None,
):
    """One open-loop traffic trial; returns a
    :class:`~repro.bench.harness.TrialResult` (``impl="lwfs"``).

    ``workload`` is a :class:`WorkloadSpec`, a JSON path, or a plain
    spec document (dict); ``options.workload`` / ``REPRO_WORKLOAD``
    supply it when the argument is None.  ``options.tenant_collapse``
    (kill switch ``REPRO_TENANT_COLLAPSE=0``) selects the collapsed or
    the uncollapsed reference population; the figure of merit is
    completed operations/second over the measured window.
    """
    from dataclasses import replace

    from ..bench.harness import TrialResult, _kernel_stats

    opts = (options if options is not None else RunOptions()).resolved()
    if workload is None:
        workload = opts.workload
    if workload is None:
        raise ValueError("run_workload_trial needs a workload "
                         "(argument, RunOptions(workload=...), or REPRO_WORKLOAD)")
    if isinstance(workload, str):
        from .spec import load_workload

        workload = load_workload(workload)
    elif isinstance(workload, dict):
        workload = WorkloadSpec.from_doc(workload)

    machine = spec or dev_cluster()
    config = config or SimConfig()
    config = replace(config, seed=seed)
    collapse = bool(opts.tenant_collapse)
    n_sessions = sum(
        (auto_representatives(c, workload) if collapse else c.tenants)
        for c in workload.classes
    )
    cluster = SimCluster(
        machine,
        config,
        compute_nodes=min(machine.compute_nodes, max(1, n_sessions)),
        io_nodes=machine.io_nodes,
        service_nodes=1,
        options=opts,
    )
    deployment = LWFSDeployment(cluster, n_storage_servers=n_servers)
    injector = None
    if opts.faults is not None:
        from ..faults import FaultInjector

        injector = FaultInjector(cluster, deployment, opts.faults).install()
    sampler = None
    if opts.metrics:
        from ..metrics import (
            MetricsRegistry,
            Sampler,
            default_period,
            install_standard_instruments,
        )

        period = opts.metrics_period
        if period is None:
            period = default_period(workload.horizon)
        registry = MetricsRegistry.install(cluster.env)
        install_standard_instruments(registry, cluster, deployment)
        sampler = Sampler(registry, period).start()

    engine = WorkloadEngine(cluster, deployment, workload, collapse=collapse)
    engine.run()

    extra = _kernel_stats(cluster)
    extra["tenants_simulated"] = float(workload.total_tenants)
    extra["sessions_simulated"] = float(n_sessions)
    extra["max_class_multiplicity"] = float(engine.max_class_multiplicity())
    total_ops = 0.0
    total_bytes = 0.0
    rows = engine.class_rows()
    for name, row in rows.items():
        total_ops += row["ops"]
        total_bytes += row["bytes"]
        for field_name, value in row.items():
            extra[f"wl.{name}.{field_name}"] = value
    span = engine.span
    extra["ops_per_s"] = total_ops / span
    if injector is not None:
        injector.finish()
        extra.update(injector.stats())
    fault_log = injector.log if injector is not None else None
    metrics_doc = None
    if sampler is not None:
        from ..metrics import build_doc, evaluate_health

        sampler.finish()
        metrics_doc = build_doc(sampler.registry, sampler)
        metrics_doc["health"] = evaluate_health(metrics_doc, fault_log=fault_log).to_dict()
        extra.update(sampler.stats())
    return TrialResult(
        impl="lwfs",
        n_clients=workload.total_tenants,
        n_servers=n_servers,
        state_bytes=0,
        max_elapsed=span,
        mean_elapsed=span,
        throughput_mb_s=total_bytes / span / MiB,
        extra=extra,
        fault_log=fault_log,
        metrics=metrics_doc,
    )
