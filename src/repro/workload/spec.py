"""Typed multi-tenant workload specifications.

A :class:`WorkloadSpec` describes an *open-loop* traffic mix: a set of
:class:`TenantClass` populations (how many tenants, which arrival
process, which operation mix, which request sizes) driven against one
shared LWFS deployment for a fixed horizon.  Open-loop means arrivals
do not wait for completions — the offered load is a property of the
spec, not of the system's response, which is what makes saturation and
interference measurable.

Specs round-trip through JSON (:meth:`WorkloadSpec.to_doc` /
:meth:`WorkloadSpec.from_doc`, :func:`load_workload`) and carry a
content :meth:`~WorkloadSpec.signature` that
:meth:`repro.sim.config.RunOptions.describe` folds into the bench
trial-cache key — a cached clean-traffic outcome can never answer for a
different mix.

Arrival processes (all parameterized by the class-aggregate ``rate`` in
arrivals/second):

* ``poisson`` — memoryless arrivals, the independent-tenant baseline;
* ``pareto`` — heavy-tailed (Lomax) inter-arrival gaps with shape
  ``pareto_alpha``, normalized to the same mean rate: bursts and lulls;
* ``diurnal`` — a piecewise-constant intensity trace
  (``diurnal_profile``, cycled over the horizon) modulating a Poisson
  process, normalized so the *mean* rate matches ``rate``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Tuple

from ..units import KiB

__all__ = [
    "ARRIVALS",
    "OPS",
    "SIZE_DISTS",
    "TenantClass",
    "WorkloadSpec",
    "diurnal_mixed",
    "load_workload",
    "save_workload",
]

#: Supported arrival processes.
ARRIVALS = ("poisson", "pareto", "diurnal")

#: Operations a tenant can issue (mapped onto the LWFS client API).
OPS = ("create", "getattr", "read", "write")

#: Request-size distributions (mean = ``size_bytes`` for all of them).
SIZE_DISTS = ("fixed", "uniform", "lognormal")


@dataclass(frozen=True)
class TenantClass:
    """One homogeneous tenant population.

    ``rate`` is the aggregate arrival rate of the *whole class* in
    operations/second — scaling ``tenants`` up at constant ``rate``
    changes who issues the load, not how much of it there is, which is
    what makes tenant-class collapsing testable against the uncollapsed
    population.

    ``representatives`` bounds how many simulated sessions stand in for
    the class when tenant collapsing is on (0 = choose automatically);
    with collapsing off every tenant gets its own session.
    """

    name: str
    tenants: int
    rate: float
    arrival: str = "poisson"
    #: Relative operation weights, e.g. ``(("create", 3), ("getattr", 1))``.
    op_mix: Tuple[Tuple[str, float], ...] = (("create", 1.0),)
    size_dist: str = "fixed"
    size_bytes: int = 64 * KiB
    pareto_alpha: float = 1.5
    diurnal_profile: Tuple[float, ...] = ()
    representatives: int = 0

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise ValueError(f"class name must be non-empty and dot-free, got {self.name!r}")
        if self.tenants < 1:
            raise ValueError(f"{self.name}: tenants must be >= 1, got {self.tenants}")
        if not self.rate > 0:
            raise ValueError(f"{self.name}: rate must be positive, got {self.rate}")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"{self.name}: arrival must be one of {ARRIVALS}, "
                             f"got {self.arrival!r}")
        if not self.op_mix:
            raise ValueError(f"{self.name}: op_mix cannot be empty")
        for op, share in self.op_mix:
            if op not in OPS:
                raise ValueError(f"{self.name}: unknown op {op!r}; expected one of {OPS}")
            if share < 0:
                raise ValueError(f"{self.name}: op_mix share for {op!r} is negative")
        if not sum(share for _, share in self.op_mix) > 0:
            raise ValueError(f"{self.name}: op_mix shares sum to zero")
        if len({op for op, _ in self.op_mix}) != len(self.op_mix):
            raise ValueError(f"{self.name}: op_mix lists an op twice")
        if self.size_dist not in SIZE_DISTS:
            raise ValueError(f"{self.name}: size_dist must be one of {SIZE_DISTS}, "
                             f"got {self.size_dist!r}")
        if self.size_bytes < 1:
            raise ValueError(f"{self.name}: size_bytes must be >= 1")
        if self.arrival == "pareto" and not self.pareto_alpha > 1.0:
            raise ValueError(f"{self.name}: pareto_alpha must be > 1 for a finite "
                             f"mean inter-arrival gap, got {self.pareto_alpha}")
        if self.arrival == "diurnal":
            if not self.diurnal_profile:
                raise ValueError(f"{self.name}: diurnal arrival needs a diurnal_profile")
            if any(v < 0 for v in self.diurnal_profile):
                raise ValueError(f"{self.name}: diurnal_profile values must be >= 0")
            if not sum(self.diurnal_profile) > 0:
                raise ValueError(f"{self.name}: diurnal_profile sums to zero")
        if self.representatives < 0:
            raise ValueError(f"{self.name}: representatives must be >= 0")
        # Canonical op order: the engine maps RNG draws to ops through the
        # mix's cumulative fractions, so two spellings of the same mix
        # (code-built vs JSON round-trip) must consume draws identically.
        object.__setattr__(
            self,
            "op_mix",
            tuple(sorted(self.op_mix, key=lambda pair: OPS.index(pair[0]))),
        )

    def mix(self) -> Tuple[Tuple[str, float], ...]:
        """The op mix normalized to fractions, in ``op_mix`` order."""
        total = sum(share for _, share in self.op_mix)
        return tuple((op, share / total) for op, share in self.op_mix)

    def to_doc(self) -> dict:
        doc = {
            "name": self.name,
            "tenants": self.tenants,
            "rate": self.rate,
            "arrival": self.arrival,
            "op_mix": {op: share for op, share in self.op_mix},
            "size_dist": self.size_dist,
            "size_bytes": self.size_bytes,
        }
        if self.arrival == "pareto":
            doc["pareto_alpha"] = self.pareto_alpha
        if self.arrival == "diurnal":
            doc["diurnal_profile"] = list(self.diurnal_profile)
        if self.representatives:
            doc["representatives"] = self.representatives
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "TenantClass":
        mix = doc.get("op_mix", {"create": 1.0})
        return cls(
            name=doc["name"],
            tenants=int(doc["tenants"]),
            rate=float(doc["rate"]),
            arrival=doc.get("arrival", "poisson"),
            op_mix=tuple(sorted((str(op), float(share)) for op, share in mix.items())),
            size_dist=doc.get("size_dist", "fixed"),
            size_bytes=int(doc.get("size_bytes", 64 * KiB)),
            pareto_alpha=float(doc.get("pareto_alpha", 1.5)),
            diurnal_profile=tuple(float(v) for v in doc.get("diurnal_profile", ())),
            representatives=int(doc.get("representatives", 0)),
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete open-loop traffic description for one trial.

    ``quantum`` is the arrival-batching granularity in simulated
    seconds: per (class, quantum) the engine draws how many arrivals
    land in the window, then which tenants issued them — one RNG
    consumption pattern shared by the collapsed and uncollapsed paths
    (common random numbers), so ``REPRO_TENANT_COLLAPSE=0`` is
    bit-identical whenever every class multiplicity is 1.  ``warmup``
    excludes the ramp-in prefix from the measured latency/goodput
    statistics (the load is still offered).
    """

    classes: Tuple[TenantClass, ...]
    horizon: float = 1.0
    quantum: float = 0.01
    warmup: float = 0.0

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a workload needs at least one tenant class")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant-class names: {names}")
        if not self.horizon > 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not 0 < self.quantum <= self.horizon:
            raise ValueError(
                f"quantum must be in (0, horizon], got {self.quantum} vs {self.horizon}"
            )
        if not 0 <= self.warmup < self.horizon:
            raise ValueError(f"warmup must be in [0, horizon), got {self.warmup}")

    @property
    def total_tenants(self) -> int:
        return sum(c.tenants for c in self.classes)

    def to_doc(self) -> dict:
        return {
            "classes": [c.to_doc() for c in self.classes],
            "horizon": self.horizon,
            "quantum": self.quantum,
            "warmup": self.warmup,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "WorkloadSpec":
        return cls(
            classes=tuple(TenantClass.from_doc(c) for c in doc["classes"]),
            horizon=float(doc.get("horizon", 1.0)),
            quantum=float(doc.get("quantum", 0.01)),
            warmup=float(doc.get("warmup", 0.0)),
        )

    def signature(self) -> str:
        """Stable content hash — the trial-cache identity of this mix."""
        canonical = json.dumps(self.to_doc(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def load_workload(path: str) -> WorkloadSpec:
    """Read a workload spec from a JSON file (see ``examples/workloads/``)."""
    with open(path, encoding="utf-8") as fh:
        return WorkloadSpec.from_doc(json.load(fh))


def save_workload(spec: WorkloadSpec, path: str) -> None:
    """Write *spec* as JSON, the inverse of :func:`load_workload`."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(spec.to_doc(), fh, indent=1)
        fh.write("\n")


def diurnal_mixed(
    tenants: int = 1_000_000,
    rate: float = 1500.0,
    horizon: float = 3600.0,
    quantum: float = 2.0,
    representatives: int = 4,
) -> WorkloadSpec:
    """The headline mix: three tenant populations over one shared LWFS.

    A metadata storm (small-file creates + stats), a read-mostly
    restart/analysis population, and streaming checkpoint producers —
    the first two on a day/night intensity trace, the producers
    heavy-tailed.  Tenant and rate totals split roughly 60/30/10.
    """
    day_night = (0.35, 0.25, 0.3, 0.5, 0.9, 1.4, 1.8, 2.0,
                 1.9, 1.6, 1.2, 0.8)
    n_meta = max(1, (tenants * 6) // 10)
    n_read = max(1, (tenants * 3) // 10)
    n_ckpt = max(1, tenants - n_meta - n_read)
    return WorkloadSpec(
        classes=(
            TenantClass(
                name="metadata-storm",
                tenants=n_meta,
                rate=rate * 0.6,
                arrival="diurnal",
                diurnal_profile=day_night,
                op_mix=(("create", 3.0), ("getattr", 2.0)),
                size_dist="fixed",
                size_bytes=4 * KiB,
                representatives=representatives,
            ),
            TenantClass(
                name="restart-readers",
                tenants=n_read,
                rate=rate * 0.3,
                arrival="diurnal",
                diurnal_profile=tuple(reversed(day_night)),
                op_mix=(("read", 4.0), ("getattr", 1.0)),
                size_dist="uniform",
                size_bytes=256 * KiB,
                representatives=representatives,
            ),
            TenantClass(
                name="checkpoint-producers",
                tenants=n_ckpt,
                rate=rate * 0.1,
                arrival="pareto",
                pareto_alpha=1.7,
                op_mix=(("write", 5.0), ("create", 1.0)),
                size_dist="lognormal",
                size_bytes=512 * KiB,
                representatives=representatives,
            ),
        ),
        horizon=horizon,
        quantum=quantum,
        warmup=min(30.0, horizon / 10.0),
    )
