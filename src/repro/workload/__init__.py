"""Open-loop multi-tenant traffic: specs, arrival engine, collapsing.

ROADMAP item 1 — scale-invariant multi-tenant load.  A
:class:`WorkloadSpec` describes tenant-class populations (arrival
process × op mix × size distribution); :func:`run_workload_trial`
drives them against a shared LWFS deployment with arrival-batch
aggregation and tenant-class collapsing, so 10^6 simulated tenants cost
event-loop work proportional to the *traffic*, not the population.

Quick use::

    from repro.workload import diurnal_mixed, run_workload_trial

    result = run_workload_trial(diurnal_mixed(tenants=1_000_000), n_servers=16)
    print(result.extra["ops_per_s"], result.extra["max_class_multiplicity"])

``REPRO_TENANT_COLLAPSE=0`` is the kill switch: every tenant gets its
own session (bit-identical to collapsed mode whenever every class
multiplicity is already 1).  ``python -m repro.workload`` runs the
traffic-quick gate.
"""

from .engine import WorkloadEngine, auto_representatives, run_workload_trial
from .spec import (
    ARRIVALS,
    OPS,
    SIZE_DISTS,
    TenantClass,
    WorkloadSpec,
    diurnal_mixed,
    load_workload,
    save_workload,
)

__all__ = [
    "ARRIVALS",
    "OPS",
    "SIZE_DISTS",
    "TenantClass",
    "WorkloadEngine",
    "WorkloadSpec",
    "auto_representatives",
    "diurnal_mixed",
    "load_workload",
    "run_workload_trial",
    "save_workload",
]
