"""Parallel sweep executor: fan independent trials out over processes.

The paper's evaluation is a grid sweep — implementations × client counts
× server counts × trials — and every trial is a fully independent,
deterministic simulation.  This module runs those trials over a
:class:`~concurrent.futures.ProcessPoolExecutor` and reassembles the
results *keyed by input position*, never by completion order, so a
parallel sweep is bit-identical to a serial one.

Knobs
-----
* ``jobs=`` argument (or ``--jobs``/``-j`` on the CLI),
* ``REPRO_BENCH_JOBS`` environment variable,
* default: ``os.cpu_count()``.

``jobs=1`` (or a pool that cannot be created — missing ``fork``,
sandboxed semaphores, unpicklable trial parameters) falls back to plain
in-process execution, which is also the reference the determinism tests
compare against.

Every recorded sweep appends per-trial wall-clock and event-loop stats to
``BENCH_sweep.json`` at the repository root (override the path with
``REPRO_BENCH_SWEEP_JSON``), so speedups are measurable across PRs.

Trials are deterministic, so finished outcomes persist in a
content-addressed cache (:mod:`repro.bench.cache`) under
``results/.trial-cache/`` and re-running an unchanged sweep point costs a
file read instead of a simulation.  Disable with ``--no-cache`` or
``REPRO_BENCH_CACHE=0``; sweep records report ``cache_hits`` /
``cache_misses`` so warm runs are visible in BENCH_sweep.json.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pickle import PicklingError
from typing import Any, Dict, List, Optional, Sequence

from ..sim.config import env_str

__all__ = [
    "TrialSpec",
    "TrialOutcome",
    "checkpoint_spec",
    "create_spec",
    "workload_spec",
    "resolve_jobs",
    "run_trials",
    "run_sweep",
    "sweep_json_path",
]

#: Schema marker written into BENCH_sweep.json.  Jumped v1 -> v4 to join
#: the trial cache's generation numbering (repro-trial-cache/v4): both
#: stores grew the metrics summary in the same change, and one shared
#: generation is easier to audit than two drifting ones.  v5: open-loop
#: workload trials (kind="workload") joined the sweep, and per-trial
#: rows grew tenants_simulated / max_class_multiplicity.  v6: the
#: burst-buffer tier signature joined the trial key (repro-trial-cache/v6)
#: and buffered rows carry the buffer_* drain stats; sweeps recorded
#: under older schemas are dropped on the next write (with a count).
SWEEP_SCHEMA = "repro-bench-sweep/v6"

#: Cap on recorded sweep entries kept in BENCH_sweep.json.
SWEEP_HISTORY = 50


@dataclass
class TrialSpec:
    """One independent simulation to run: what, at which point, which seed."""

    kind: str  # "checkpoint" (Fig. 9), "create" (Fig. 10), or "workload"
    impl: str
    n_clients: int
    n_servers: int
    seed: int
    params: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> tuple:
        """Stable identity used for result assembly and JSON records."""
        return (self.kind, self.impl, self.n_clients, self.n_servers, self.seed)


@dataclass
class TrialOutcome:
    """A finished trial: the figure of merit plus executor-side stats.

    ``value``/``unit`` are the deterministic simulation outputs;
    ``wall_clock_s`` is host time and intentionally kept out of every
    aggregate that must be reproducible.
    """

    spec: TrialSpec
    value: float
    unit: str
    wall_clock_s: float
    events_processed: int
    peak_event_queue: int
    sim_seconds: float = 0.0
    #: Flow completions the analytic fast-forward engine retired without
    #: per-chunk event scheduling (0 when the engine is off or unused).
    events_fast_forwarded: int = 0
    #: Conservative-sync barrier crossings summed over the run's shards
    #: (0 for single-process runs).
    window_barriers: int = 0
    #: Completed span list when the spec carried ``trace=True`` (spans
    #: pickle cleanly, so traced trials survive the process pool).
    trace: Optional[list] = None
    #: Compact per-kind summary of the trace, sized for BENCH_sweep.json.
    trace_summary: Optional[Dict[str, Any]] = None
    #: Fault-recovery counters + log when the spec carried a fault plan
    #: (``retries``, ``recovered_ops``, ``goodput_degraded``, ...).
    fault_summary: Optional[Dict[str, Any]] = None
    fault_log: Optional[list] = None
    #: Full exported metrics document when the spec carried
    #: ``RunOptions(metrics=True)`` (see :mod:`repro.metrics.export`);
    #: plain JSON dict, so it survives the pool and the trial cache.
    metrics: Optional[Dict[str, Any]] = None
    #: Compact series summary + SLO verdict, sized for BENCH_sweep.json.
    metrics_summary: Optional[Dict[str, Any]] = None
    #: Burst-buffer drain stats when the spec carried a tier
    #: (``buffer_absorbed_mb``, ``buffer_drain_tail_s``,
    #: ``buffer_backpressure_s``, ...; None on the direct path).
    buffer_summary: Optional[Dict[str, float]] = None
    #: Open-loop workload trials: how many tenants the run stood for and
    #: the largest tenant multiplicity one representative session carried
    #: (0 for the closed-loop checkpoint/create kinds).
    tenants_simulated: int = 0
    max_class_multiplicity: int = 0
    #: ``True`` when the outcome came from the persistent trial cache
    #: (``wall_clock_s`` is then the cache lookup, not a simulation).
    cached: bool = False


def checkpoint_spec(impl: str, n_clients: int, n_servers: int, seed: int, **params) -> TrialSpec:
    """A Fig. 9 dump-phase trial (figure of merit: MB/s)."""
    return TrialSpec("checkpoint", impl, n_clients, n_servers, seed, params)


def create_spec(impl: str, n_clients: int, n_servers: int, seed: int, **params) -> TrialSpec:
    """A Fig. 10 create-phase trial (figure of merit: creates/s)."""
    return TrialSpec("create", impl, n_clients, n_servers, seed, params)


def workload_spec(workload, n_servers: int, seed: int, **params) -> TrialSpec:
    """An open-loop multi-tenant traffic trial (figure of merit: ops/s).

    ``workload`` is a :class:`~repro.workload.WorkloadSpec`, a JSON path,
    or a spec document; its content signature joins the trial-cache key
    through ``RunOptions.describe``/``params``, so cached outcomes never
    answer for a different mix.  ``n_clients`` records the simulated
    tenant population, not a session count.
    """
    from ..workload.spec import WorkloadSpec

    n_clients = 0
    if isinstance(workload, WorkloadSpec):
        n_clients = workload.total_tenants
    return TrialSpec(
        "workload", "lwfs", n_clients, n_servers, seed,
        dict(params, workload=workload),
    )


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_BENCH_JOBS`` > cores."""
    if jobs is None:
        raw = env_str("REPRO_BENCH_JOBS").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(f"REPRO_BENCH_JOBS={raw!r} is not an integer") from None
        else:
            jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _run_trial(spec: TrialSpec) -> TrialOutcome:
    """Execute one trial (runs in a worker process or in-process)."""
    from .harness import run_checkpoint_trial, run_create_trial

    start = time.perf_counter()
    if spec.kind == "checkpoint":
        result = run_checkpoint_trial(
            spec.impl, spec.n_clients, spec.n_servers, seed=spec.seed, **spec.params
        )
        value, unit = result.throughput_mb_s, "MB/s"
    elif spec.kind == "create":
        result = run_create_trial(
            spec.impl, spec.n_clients, spec.n_servers, seed=spec.seed, **spec.params
        )
        value, unit = result.extra["creates_per_s"], "ops/s"
    elif spec.kind == "workload":
        from ..workload.engine import run_workload_trial

        result = run_workload_trial(
            n_servers=spec.n_servers, seed=spec.seed, **spec.params
        )
        value, unit = result.extra["ops_per_s"], "ops/s"
    else:
        raise ValueError(f"unknown trial kind {spec.kind!r}")
    wall = time.perf_counter() - start
    trace_summary = None
    if result.trace is not None:
        from ..trace import summarize

        trace_summary = summarize(result.trace)
    fault_summary = None
    if result.fault_log is not None:
        fault_summary = {
            k: result.extra[k]
            for k in (
                "faults_injected", "retries", "recovered_ops", "rpc_dropped",
                "rpc_duplicated", "degraded_seconds", "goodput_degraded",
            )
            if k in result.extra
        }
        fault_summary["fault_log_entries"] = len(result.fault_log)
    buffer_summary = {
        k: v for k, v in result.extra.items() if k.startswith("buffer_")
    } or None
    metrics_summary = None
    if result.metrics is not None:
        from ..metrics import metrics_summary as summarize_metrics

        metrics_summary = summarize_metrics(result.metrics)
    return TrialOutcome(
        spec=spec,
        value=value,
        unit=unit,
        wall_clock_s=wall,
        events_processed=int(result.extra.get("events_processed", 0)),
        peak_event_queue=int(result.extra.get("peak_event_queue", 0)),
        sim_seconds=float(result.extra.get("sim_seconds", 0.0)),
        events_fast_forwarded=int(result.extra.get("events_fast_forwarded", 0)),
        window_barriers=int(result.extra.get("window_barriers", 0)),
        trace=result.trace,
        trace_summary=trace_summary,
        fault_summary=fault_summary,
        buffer_summary=buffer_summary,
        fault_log=result.fault_log,
        metrics=result.metrics,
        metrics_summary=metrics_summary,
        tenants_simulated=int(result.extra.get("tenants_simulated", 0)),
        max_class_multiplicity=int(result.extra.get("max_class_multiplicity", 0)),
    )


def _pool_context():
    """Prefer fork (inherits sys.path / env) where the platform has it."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _resolve_cache(cache):
    """Map the ``cache`` argument to a TrialCache or None.

    ``None`` (default) consults ``REPRO_BENCH_CACHE``; ``False`` disables
    for this call; ``True`` forces the default store; a
    :class:`~repro.bench.cache.TrialCache` instance is used as-is.
    """
    from .cache import TrialCache, cache_enabled

    if cache is None:
        return TrialCache() if cache_enabled() else None
    if cache is False:
        return None
    if cache is True:
        return TrialCache()
    return cache


def _outcome_payload(o: TrialOutcome) -> Dict[str, Any]:
    """The deterministic slice of an outcome, as stored in the cache."""
    payload = {
        "value": o.value,
        "unit": o.unit,
        "events_processed": o.events_processed,
        "peak_event_queue": o.peak_event_queue,
        "sim_seconds": o.sim_seconds,
        "events_fast_forwarded": o.events_fast_forwarded,
        "window_barriers": o.window_barriers,
    }
    if o.tenants_simulated:
        payload["tenants_simulated"] = o.tenants_simulated
        payload["max_class_multiplicity"] = o.max_class_multiplicity
    if o.buffer_summary is not None:
        payload["buffer_summary"] = o.buffer_summary
    if o.metrics is not None:
        payload["metrics"] = o.metrics
        payload["metrics_summary"] = o.metrics_summary
    return payload


def _cached_outcome(spec: TrialSpec, payload: Dict[str, Any], wall: float) -> TrialOutcome:
    metrics = payload.get("metrics")
    return TrialOutcome(
        spec=spec,
        value=float(payload["value"]),
        unit=str(payload["unit"]),
        wall_clock_s=wall,
        events_processed=int(payload.get("events_processed", 0)),
        peak_event_queue=int(payload.get("peak_event_queue", 0)),
        sim_seconds=float(payload.get("sim_seconds", 0.0)),
        events_fast_forwarded=int(payload.get("events_fast_forwarded", 0)),
        window_barriers=int(payload.get("window_barriers", 0)),
        metrics=metrics if isinstance(metrics, dict) else None,
        metrics_summary=payload.get("metrics_summary"),
        buffer_summary=payload.get("buffer_summary"),
        tenants_simulated=int(payload.get("tenants_simulated", 0)),
        max_class_multiplicity=int(payload.get("max_class_multiplicity", 0)),
        cached=True,
    )


#: Keys of one-shot executor warnings that already fired this process.
#: Convention: every "warn once" site registers a short string key here
#: via :func:`_warn_once` instead of growing its own module-level flag.
_WARNED_KEYS: set = set()


def _warn_once(key: str, message: str, stacklevel: int = 3) -> bool:
    """Emit *message* as a RuntimeWarning once per process per *key*.

    Returns whether the warning fired, so callers (and tests) can tell a
    fresh warning from a deduplicated repeat.
    """
    if key in _WARNED_KEYS:
        return False
    _WARNED_KEYS.add(key)
    import warnings

    warnings.warn(message, RuntimeWarning, stacklevel=stacklevel)
    return True


def _clamp_jobs_for_shards(jobs: int, specs: Sequence[TrialSpec]) -> int:
    """Cap ``jobs`` so trial workers x shard workers fit the machine.

    A sharded trial forks its own worker per shard, so a pool of J
    sharded trials runs J x S simulation processes.  Oversubscribing
    cores that way is strictly slower than a narrower pool (the shards
    within one trial must advance in lockstep, so preempting them
    stretches every window).  Warns once per process when it clamps.
    """
    from .cache import _resolved_options

    max_shards = 1
    for spec in specs:
        try:
            max_shards = max(max_shards, _resolved_options(spec).shards)
        except (TypeError, ValueError):  # pragma: no cover - exotic params
            continue
    if max_shards <= 1:
        return jobs
    cores = os.cpu_count() or 1
    if jobs * max_shards <= cores:
        return jobs
    capped = max(1, cores // max_shards)
    if capped < jobs:
        _warn_once(
            "shard-clamp",
            f"jobs={jobs} x shards={max_shards} oversubscribes "
            f"{cores} cores; capping jobs at {capped}",
            stacklevel=4,
        )
    return min(jobs, capped)


def run_trials(
    specs: Sequence[TrialSpec], jobs: Optional[int] = None, cache=None
) -> List[TrialOutcome]:
    """Run every trial and return outcomes in input order.

    With ``jobs > 1`` the trials run on a process pool; the merge is keyed
    by input position, so the output is bit-identical to the serial path
    regardless of which worker finishes first.  Pool-infrastructure
    failures (no fork, no semaphores, unpicklable params) degrade to the
    in-process path; real trial errors propagate either way.

    Specs with a warm entry in the persistent trial cache are answered
    from disk (``cached=True`` on the outcome) and never reach the pool;
    fresh results are written back.  Pass ``cache=False`` to bypass.
    """
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    jobs = _clamp_jobs_for_shards(jobs, specs)
    store = _resolve_cache(cache)

    merged: Dict[int, TrialOutcome] = {}
    pending: List[int] = []
    if store is not None:
        for i, spec in enumerate(specs):
            t0 = time.perf_counter()
            payload = store.get(spec)
            if payload is not None:
                merged[i] = _cached_outcome(spec, payload, time.perf_counter() - t0)
            else:
                pending.append(i)
    else:
        pending = list(range(len(specs)))

    def finish(i: int, outcome: TrialOutcome) -> None:
        merged[i] = outcome
        if store is not None:
            store.put(specs[i], _outcome_payload(outcome))

    if jobs <= 1 or len(pending) <= 1:
        for i in pending:
            finish(i, _run_trial(specs[i]))
        return [merged[i] for i in range(len(specs))]

    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)), mp_context=_pool_context()
        ) as pool:
            futures = {pool.submit(_run_trial, specs[i]): i for i in pending}
            for future in as_completed(futures):
                finish(futures[future], future.result())
        return [merged[i] for i in range(len(specs))]
    except (OSError, PicklingError, ImportError, PermissionError) as exc:
        # The pool itself is unavailable; the sweep still has to finish.
        _warn_once(
            f"pool-fallback:{type(exc).__name__}",
            f"process pool unavailable ({type(exc).__name__}: {exc}); "
            "falling back to in-process execution",
        )
        for i in pending:
            if i not in merged:
                finish(i, _run_trial(specs[i]))
        return [merged[i] for i in range(len(specs))]


def sweep_json_path() -> str:
    """Where sweep trajectories are recorded (``REPRO_BENCH_SWEEP_JSON``)."""
    override = env_str("REPRO_BENCH_SWEEP_JSON")
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(os.path.join(here, "..", "..", "..", "BENCH_sweep.json"))


def run_sweep(
    specs: Sequence[TrialSpec],
    jobs: Optional[int] = None,
    label: str = "sweep",
    record: bool = True,
    cache=None,
) -> List[TrialOutcome]:
    """Run a whole sweep, optionally recording stats to BENCH_sweep.json."""
    specs = list(specs)
    jobs = resolve_jobs(jobs)
    start = time.perf_counter()
    outcomes = run_trials(specs, jobs=jobs, cache=cache)
    wall = time.perf_counter() - start
    if record:
        _record_sweep(label, jobs, wall, outcomes)
    return outcomes


def _trial_record(o: TrialOutcome) -> Dict[str, Any]:
    """One per-trial JSON row: identity, figure of merit, kernel stats."""
    row: Dict[str, Any] = {
        "kind": o.spec.kind,
        "impl": o.spec.impl,
        "n_clients": o.spec.n_clients,
        "n_servers": o.spec.n_servers,
        "seed": o.spec.seed,
        "value": o.value,
        "unit": o.unit,
        "wall_clock_s": round(o.wall_clock_s, 6),
        "events_processed": o.events_processed,
        "peak_event_queue": o.peak_event_queue,
        "sim_seconds": round(o.sim_seconds, 9),
        "events_fast_forwarded": o.events_fast_forwarded,
        "window_barriers": o.window_barriers,
        "cached": o.cached,
    }
    if o.tenants_simulated:
        row["tenants_simulated"] = o.tenants_simulated
        row["max_class_multiplicity"] = o.max_class_multiplicity
    if o.trace_summary is not None:
        row["trace_summary"] = o.trace_summary
    if o.fault_summary is not None:
        row["fault_summary"] = o.fault_summary
    if o.buffer_summary is not None:
        row["buffer_summary"] = o.buffer_summary
    if o.metrics_summary is not None:
        row["metrics_summary"] = o.metrics_summary
    return row


def _record_sweep(label: str, jobs: int, wall: float, outcomes: List[TrialOutcome]) -> None:
    path = sweep_json_path()
    doc: Dict[str, Any] = {"schema": SWEEP_SCHEMA, "sweeps": []}
    try:
        with open(path, encoding="utf-8") as fh:
            existing = json.load(fh)
        if isinstance(existing, dict) and isinstance(existing.get("sweeps"), list):
            if existing.get("schema") == SWEEP_SCHEMA:
                doc = existing
            else:
                # Rows written under an older schema are stale by
                # construction (the trial key changed); keeping them
                # would mix incomparable generations in one file.
                print(
                    f"[bench] dropping {len(existing['sweeps'])} sweep(s) recorded "
                    f"under {existing.get('schema')!r} (current: {SWEEP_SCHEMA!r})"
                )
    except (OSError, ValueError):
        pass

    serial_s = sum(o.wall_clock_s for o in outcomes)
    hits = sum(1 for o in outcomes if o.cached)
    doc["sweeps"].append(
        {
            "label": label,
            "jobs": jobs,
            "trials": len(outcomes),
            "wall_clock_s": round(wall, 6),
            "serial_trial_s": round(serial_s, 6),
            "speedup": round(serial_s / wall, 3) if wall > 0 else None,
            "cache_hits": hits,
            "cache_misses": len(outcomes) - hits,
            "events_processed": sum(o.events_processed for o in outcomes),
            "per_trial": [_trial_record(o) for o in outcomes],
        }
    )
    doc["sweeps"] = doc["sweeps"][-SWEEP_HISTORY:]
    try:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
    except OSError:  # pragma: no cover - read-only checkout
        pass


def _quick_grid() -> List[TrialSpec]:
    """The CI smoke sweep: a reduced Fig. 9 + Fig. 10 grid."""
    from ..units import MiB

    specs: List[TrialSpec] = []
    for impl in ("lwfs", "lustre-fpp"):
        for m in (2, 16):
            for n in (2, 8):
                for t in range(2):
                    specs.append(
                        checkpoint_spec(impl, n, m, seed=100 + t, state_bytes=8 * MiB)
                    )
    for m in (2, 16):
        for n in (2, 8):
            for t in range(2):
                specs.append(create_spec("lwfs", n, m, seed=200 + t, creates_per_client=8))
    return specs


def _flow_grid(flow: bool) -> List[TrialSpec]:
    """The flow accuracy gate: bulky dumps (> 2 chunks per rank), so the
    steady-state middle actually rides the flow engine, run with the flag
    both ways at otherwise identical points."""
    from ..units import MiB

    specs: List[TrialSpec] = []
    for impl in ("lwfs", "lustre-fpp"):
        for n, m in ((4, 2), (8, 4)):
            specs.append(
                checkpoint_spec(
                    impl, n, m, seed=300, state_bytes=32 * MiB, flow=flow
                )
            )
    return specs


#: Flow-vs-exact gate: maximum relative error on the figure of merit.
FLOW_REL_TOL = 0.01

#: Fast-forward gate: the analytic engine must match the reference flow
#: arithmetic to floating-point noise, not merely to model tolerance.
FF_REL_TOL = 1e-9

#: Sharded-vs-single gate: maximum relative error on the figure of merit
#: (the mean-field service split and per-shard jitter draws bound this).
SHARD_REL_TOL = 0.01


def _ff_grid(fastforward: bool) -> List[TrialSpec]:
    """The fast-forward equivalence gate: flow-mode dumps big enough to
    keep many concurrent flows live, with the engine forced on or off."""
    from ..sim.config import RunOptions
    from ..units import MiB

    specs: List[TrialSpec] = []
    for impl in ("lwfs", "lustre-fpp"):
        for n, m in ((8, 4), (16, 8)):
            specs.append(
                checkpoint_spec(
                    impl, n, m, seed=400, state_bytes=32 * MiB,
                    options=RunOptions(flow=True, fastforward=fastforward),
                )
            )
    return specs


def _shard_grid(shards: int) -> List[TrialSpec]:
    """The shard accuracy gate: the 128-client Red Storm slice, sharded
    versus single-process at otherwise identical points."""
    from ..machine.presets import red_storm
    from ..sim.config import RunOptions
    from ..units import MiB

    return [
        checkpoint_spec(
            "lwfs", 128, 32, seed=500, state_bytes=8 * MiB,
            spec=red_storm(),
            options=RunOptions(collapse=True, flow=True, shards=shards),
        )
    ]


#: Buffer crossover gate: with the burst fitting the buffer, the dump
#: must beat direct-to-OST by at least this factor on the Red Storm slice.
BUFFER_MIN_SPEEDUP = 5.0


def _buffer_grid() -> List[TrialSpec]:
    """The burst-buffer crossover points: the 128-client Red Storm slice
    direct, buffered with the burst fitting the pool (absorb-limited),
    and buffered with the pool smaller than the burst (drain-limited)."""
    from ..machine.presets import red_storm
    from ..sim.config import RunOptions
    from ..storage.buffer import TierSpec
    from ..units import GiB, MiB

    spec = red_storm()
    base = dict(collapse=True, flow=True)
    fits = TierSpec(mode="buffer", placement="node-local", capacity_bytes=2 * GiB)
    limited = TierSpec(mode="buffer", placement="node-local", capacity_bytes=2 * MiB)
    return [
        checkpoint_spec(
            "lwfs", 128, 32, seed=600, state_bytes=8 * MiB, spec=spec,
            options=RunOptions(**base),
        ),
        checkpoint_spec(
            "lwfs", 128, 32, seed=600, state_bytes=8 * MiB, spec=spec,
            options=RunOptions(tiers=fits, **base),
        ),
        checkpoint_spec(
            "lwfs", 128, 32, seed=600, state_bytes=8 * MiB, spec=spec,
            options=RunOptions(tiers=limited, **base),
        ),
    ]


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.bench.executor``: smoke-run the parallel sweep.

    Runs the quick grid with the requested job count, optionally re-runs
    it serially and asserts bit-identical results, and records both runs
    in BENCH_sweep.json.  This is what ``make bench-quick`` / CI invokes.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.executor",
        description="Smoke-run the parallel sweep executor on a reduced grid.",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_BENCH_JOBS or CPU count)",
    )
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="re-run the sweep with jobs=1 and require bit-identical results",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent trial cache (results/.trial-cache)",
    )
    parser.add_argument(
        "--check-cache", action="store_true",
        help="re-run the sweep warm and require identical results from cache hits",
    )
    parser.add_argument(
        "--check-flow", action="store_true",
        help="run the flow accuracy grid exact and flow-level and require "
             f"relative error <= {FLOW_REL_TOL:.0%} at every point",
    )
    parser.add_argument(
        "--check-fastforward", action="store_true",
        help="run the flow grid with the analytic fast-forward engine on "
             f"and off and require relative error <= {FF_REL_TOL:g}",
    )
    parser.add_argument(
        "--check-buffer", action="store_true",
        help="run the burst-buffer crossover points (direct vs buffer-fits "
             f"vs drain-limited) and require a >= {BUFFER_MIN_SPEEDUP:g}x "
             "absorb speedup plus visible drain-limited backpressure",
    )
    parser.add_argument(
        "--check-shard", action="store_true",
        help="run the 128-client Red Storm slice sharded and single-process "
             f"and require relative error <= {SHARD_REL_TOL:.0%}, plus "
             "bit-identical repeat of the sharded run",
    )
    args = parser.parse_args(argv)

    cache = False if args.no_cache else None
    jobs = resolve_jobs(args.jobs)
    specs = _quick_grid()
    start = time.perf_counter()
    outcomes = run_sweep(specs, jobs=jobs, label=f"quick(jobs={jobs})", cache=cache)
    wall = time.perf_counter() - start
    hits = sum(1 for o in outcomes if o.cached)
    print(
        f"quick sweep: {len(outcomes)} trials, jobs={jobs}, "
        f"{wall:.2f}s wall, {sum(o.events_processed for o in outcomes)} events, "
        f"{hits} cache hits"
    )

    if args.check_cache:
        if args.no_cache:
            print("--check-cache is meaningless with --no-cache")
            return 2
        warm_start = time.perf_counter()
        warm = run_sweep(specs, jobs=jobs, label=f"quick-warm(jobs={jobs})", cache=cache)
        warm_wall = time.perf_counter() - warm_start
        warm_hits = sum(1 for o in warm if o.cached)
        bad = [
            (o.spec.key(), o.value, w.value)
            for o, w in zip(outcomes, warm)
            if o.value != w.value
        ]
        if bad or warm_hits != len(specs):
            for key, cold_v, warm_v in bad[:10]:
                print(f"CACHE MISMATCH {key}: cold={cold_v!r} warm={warm_v!r}")
            print(f"cache check FAILED: {warm_hits}/{len(specs)} hits, {len(bad)} mismatches")
            return 1
        ratio = wall / warm_wall if warm_wall > 0 else float("inf")
        print(
            f"cache ok: {warm_hits}/{len(specs)} warm hits, identical aggregates, "
            f"{wall:.2f}s cold vs {warm_wall:.2f}s warm ({ratio:.1f}x)"
        )

    if args.check_flow:
        exact = run_sweep(
            _flow_grid(False), jobs=jobs, label="flow-gate-exact", cache=cache
        )
        flowed = run_sweep(
            _flow_grid(True), jobs=jobs, label="flow-gate-flow", cache=cache
        )
        worst = 0.0
        bad = []
        for e, f in zip(exact, flowed):
            rel = abs(f.value - e.value) / e.value if e.value else 0.0
            worst = max(worst, rel)
            if rel > FLOW_REL_TOL:
                bad.append((e.spec.key(), e.value, f.value, rel))
        ev_exact = sum(o.events_processed for o in exact)
        ev_flow = sum(o.events_processed for o in flowed)
        if bad:
            for key, ev, fv, rel in bad:
                print(f"FLOW DRIFT {key}: exact={ev:.3f} flow={fv:.3f} rel={rel:.4f}")
            print(f"flow gate FAILED: {len(bad)} points over {FLOW_REL_TOL:.0%}")
            return 1
        ratio = ev_exact / ev_flow if ev_flow else float("inf")
        print(
            f"flow gate ok: {len(flowed)} points within {FLOW_REL_TOL:.0%} "
            f"(worst {worst:.4%}), {ev_exact} -> {ev_flow} events ({ratio:.1f}x fewer)"
        )

    if args.check_fastforward:
        reference = run_sweep(
            _ff_grid(False), jobs=jobs, label="ff-gate-reference", cache=cache
        )
        fast = run_sweep(
            _ff_grid(True), jobs=jobs, label="ff-gate-fast", cache=cache
        )
        worst = 0.0
        bad = []
        for r, f in zip(reference, fast):
            rel = abs(f.value - r.value) / r.value if r.value else 0.0
            worst = max(worst, rel)
            if rel > FF_REL_TOL:
                bad.append((r.spec.key(), r.value, f.value, rel))
        if bad:
            for key, rv, fv, rel in bad:
                print(f"FF DRIFT {key}: reference={rv!r} fast={fv!r} rel={rel:.3e}")
            print(f"fast-forward gate FAILED: {len(bad)} points over {FF_REL_TOL:g}")
            return 1
        ffwd = sum(o.events_fast_forwarded for o in fast)
        print(
            f"fast-forward gate ok: {len(fast)} points within {FF_REL_TOL:g} "
            f"(worst {worst:.3e}), {ffwd} completions fast-forwarded"
        )

    if args.check_buffer:
        direct, fits, limited = run_sweep(
            _buffer_grid(), jobs=jobs, label="buffer-crossover", cache=cache
        )
        speedup = fits.value / direct.value if direct.value else 0.0
        fs = fits.buffer_summary or {}
        ls = limited.buffer_summary or {}
        ok = (
            speedup >= BUFFER_MIN_SPEEDUP
            and fs.get("buffer_backpressure_s", 1.0) == 0.0
            and fs.get("buffer_drain_incomplete", 1.0) == 0.0
            and ls.get("buffer_backpressure_s", 0.0) > 0.0
            and ls.get("buffer_drain_limited", 0.0) == 1.0
        )
        print(
            f"buffer crossover: direct={direct.value:.0f} MB/s, "
            f"buffer-fits={fits.value:.0f} MB/s ({speedup:.1f}x, drain tail "
            f"{fs.get('buffer_drain_tail_s', 0.0):.2f}s), drain-limited="
            f"{limited.value:.0f} MB/s (backpressure "
            f"{ls.get('buffer_backpressure_s', 0.0):.2f}s)"
        )
        if not ok:
            print(f"buffer gate FAILED (need >= {BUFFER_MIN_SPEEDUP:g}x and "
                  "drain-limited backpressure)")
            return 1
        print(f"buffer gate ok: {speedup:.1f}x >= {BUFFER_MIN_SPEEDUP:g}x")

    if args.check_shard:
        single = run_sweep(
            _shard_grid(1), jobs=jobs, label="shard-gate-single", cache=cache
        )
        sharded = run_sweep(
            _shard_grid(2), jobs=jobs, label="shard-gate-sharded", cache=cache
        )
        # Sharded runs must also be reproducible run-over-run: the window
        # schedule is deterministic and the barrier carries no state.
        repeat = run_sweep(
            _shard_grid(2), jobs=jobs, label="shard-gate-repeat", cache=False
        )
        rel = (
            abs(sharded[0].value - single[0].value) / single[0].value
            if single[0].value else 0.0
        )
        if rel > SHARD_REL_TOL:
            print(
                f"SHARD DRIFT: single={single[0].value:.3f} "
                f"sharded={sharded[0].value:.3f} rel={rel:.4f}"
            )
            print(f"shard gate FAILED: over {SHARD_REL_TOL:.0%}")
            return 1
        if repeat[0].value != sharded[0].value:
            print(
                f"SHARD NONDETERMINISM: {sharded[0].value!r} vs "
                f"{repeat[0].value!r} across repeated runs"
            )
            return 1
        print(
            f"shard gate ok: rel {rel:.4%} <= {SHARD_REL_TOL:.0%}, repeat "
            f"bit-identical, {sharded[0].window_barriers} window barriers"
        )

    if args.check_determinism:
        serial = run_sweep(specs, jobs=1, label="quick(jobs=1)", cache=False)
        mismatches = [
            (o.spec.key(), o.value, s.value)
            for o, s in zip(outcomes, serial)
            if o.value != s.value
        ]
        if mismatches:
            for key, par, ser in mismatches[:10]:
                print(f"MISMATCH {key}: parallel={par!r} serial={ser!r}")
            return 1
        print(f"determinism ok: {len(serial)} trials bit-identical at jobs={jobs} vs jobs=1")

    print(f"recorded -> {sweep_json_path()}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
