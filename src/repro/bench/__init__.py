"""Benchmark harness: workloads, sweeps, reporting, analytic models."""

from .analytic import CheckpointModel, petaflop_extrapolation
from .dashboard import build_dashboard, write_dashboard
from .executor import (
    TrialOutcome,
    TrialSpec,
    checkpoint_spec,
    create_spec,
    workload_spec,
    resolve_jobs,
    run_sweep,
    run_trials,
    sweep_json_path,
)
from .figures import FIG9_CLIENTS, FIG9_SERVERS, fig9_panel, fig10_comparison, fig10_panel
from .harness import (
    IMPLEMENTATIONS,
    PAPER_STATE_BYTES,
    SweepPoint,
    TrialResult,
    measure_create_point,
    measure_point,
    run_checkpoint_trial,
    run_create_trial,
)
from .report import format_rows, format_series_table, results_dir, save_json

__all__ = [
    "IMPLEMENTATIONS",
    "PAPER_STATE_BYTES",
    "TrialResult",
    "SweepPoint",
    "TrialSpec",
    "TrialOutcome",
    "build_dashboard",
    "write_dashboard",
    "checkpoint_spec",
    "create_spec",
    "workload_spec",
    "resolve_jobs",
    "run_trials",
    "run_sweep",
    "sweep_json_path",
    "run_checkpoint_trial",
    "run_create_trial",
    "measure_point",
    "measure_create_point",
    "fig9_panel",
    "fig10_panel",
    "fig10_comparison",
    "FIG9_CLIENTS",
    "FIG9_SERVERS",
    "CheckpointModel",
    "petaflop_extrapolation",
    "format_series_table",
    "format_rows",
    "save_json",
    "results_dir",
]
