"""Sweep definitions that regenerate the paper's figures.

* Figure 9 — dump-phase throughput vs. client count, one panel per
  implementation, one series per server count {2, 4, 8, 16}.
* Figure 10 — create-phase ops/s: (a) 16-server LWFS vs Lustre
  comparison, (b) Lustre sweep, (c) LWFS sweep.

The sweeps default to a scaled-down state size (the MB/s figure of merit
is size-invariant once transfers amortize — checked by
``tests/bench/test_harness.py``); pass ``state_bytes=PAPER_STATE_BYTES``
for the full 512 MB runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..units import MiB
from .harness import SweepPoint, measure_create_point, measure_point

__all__ = [
    "FIG9_CLIENTS",
    "FIG9_SERVERS",
    "fig9_panel",
    "fig10_panel",
    "fig10_comparison",
]

#: The x axis of Figures 9 and 10 (the paper plots 0..70 clients).
FIG9_CLIENTS: Sequence[int] = (2, 4, 8, 16, 32, 48, 64)
#: One series per server count in every panel.
FIG9_SERVERS: Sequence[int] = (2, 4, 8, 16)


def fig9_panel(
    impl: str,
    clients: Sequence[int] = FIG9_CLIENTS,
    servers: Sequence[int] = FIG9_SERVERS,
    state_bytes: int = 64 * MiB,
    trials: int = 3,
) -> List[SweepPoint]:
    """One panel of Figure 9: throughput for every (clients, servers)."""
    points: List[SweepPoint] = []
    for m in servers:
        for n in clients:
            points.append(
                measure_point(impl, n, m, trials=trials, state_bytes=state_bytes)
            )
    return points


def fig10_panel(
    impl: str,
    clients: Sequence[int] = FIG9_CLIENTS,
    servers: Sequence[int] = FIG9_SERVERS,
    creates_per_client: int = 32,
    trials: int = 3,
) -> List[SweepPoint]:
    """Figure 10 (b) or (c): create throughput sweep for one stack."""
    points: List[SweepPoint] = []
    for m in servers:
        for n in clients:
            points.append(
                measure_create_point(
                    impl, n, m, trials=trials, creates_per_client=creates_per_client
                )
            )
    return points


def fig10_comparison(
    clients: Sequence[int] = FIG9_CLIENTS,
    n_servers: int = 16,
    creates_per_client: int = 32,
    trials: int = 3,
) -> Dict[str, List[SweepPoint]]:
    """Figure 10 (a): the 16-server LWFS-vs-Lustre log-scale comparison."""
    out: Dict[str, List[SweepPoint]] = {}
    for impl in ("lwfs", "lustre-fpp"):
        out[impl] = [
            measure_create_point(
                impl, n, n_servers, trials=trials, creates_per_client=creates_per_client
            )
            for n in clients
        ]
    return out
