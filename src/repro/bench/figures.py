"""Sweep definitions that regenerate the paper's figures.

* Figure 9 — dump-phase throughput vs. client count, one panel per
  implementation, one series per server count {2, 4, 8, 16}.
* Figure 10 — create-phase ops/s: (a) 16-server LWFS vs Lustre
  comparison, (b) Lustre sweep, (c) LWFS sweep.

The sweeps default to a scaled-down state size (the MB/s figure of merit
is size-invariant once transfers amortize — checked by
``tests/bench/test_harness.py``); pass ``state_bytes=PAPER_STATE_BYTES``
for the full 512 MB runs.

Every panel fans its (clients × servers × trials) grid out through
:mod:`repro.bench.executor`; ``jobs=None`` resolves ``REPRO_BENCH_JOBS``
or the CPU count, ``jobs=1`` forces the serial reference path.  Results
are assembled keyed by grid position, so they are bit-identical at any
job count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..units import MiB
from .executor import TrialSpec, checkpoint_spec, create_spec, run_sweep
from .harness import SweepPoint, _aggregate

__all__ = [
    "FIG9_CLIENTS",
    "FIG9_SERVERS",
    "fig9_panel",
    "fig10_panel",
    "fig10_comparison",
]

#: The x axis of Figures 9 and 10 (the paper plots 0..70 clients).
FIG9_CLIENTS: Sequence[int] = (2, 4, 8, 16, 32, 48, 64)
#: One series per server count in every panel.
FIG9_SERVERS: Sequence[int] = (2, 4, 8, 16)


def _sweep_points(
    specs: List[TrialSpec],
    trials: int,
    unit: str,
    jobs: Optional[int],
    label: str,
    cache=None,
) -> List[SweepPoint]:
    """Run *specs* (grouped in blocks of *trials*) and aggregate each block."""
    outcomes = run_sweep(specs, jobs=jobs, label=label, cache=cache)
    points: List[SweepPoint] = []
    for i in range(0, len(outcomes), trials):
        block = outcomes[i : i + trials]
        spec = block[0].spec
        points.append(
            _aggregate(
                spec.impl, spec.n_clients, spec.n_servers, [o.value for o in block], unit
            )
        )
    return points


def fig9_panel(
    impl: str,
    clients: Sequence[int] = FIG9_CLIENTS,
    servers: Sequence[int] = FIG9_SERVERS,
    state_bytes: int = 64 * MiB,
    trials: int = 3,
    jobs: Optional[int] = None,
    cache=None,
) -> List[SweepPoint]:
    """One panel of Figure 9: throughput for every (clients, servers)."""
    specs = [
        checkpoint_spec(impl, n, m, seed=100 + t, state_bytes=state_bytes)
        for m in servers
        for n in clients
        for t in range(trials)
    ]
    return _sweep_points(specs, trials, "MB/s", jobs, f"fig9:{impl}", cache=cache)


def fig10_panel(
    impl: str,
    clients: Sequence[int] = FIG9_CLIENTS,
    servers: Sequence[int] = FIG9_SERVERS,
    creates_per_client: int = 32,
    trials: int = 3,
    jobs: Optional[int] = None,
    cache=None,
) -> List[SweepPoint]:
    """Figure 10 (b) or (c): create throughput sweep for one stack."""
    specs = [
        create_spec(impl, n, m, seed=200 + t, creates_per_client=creates_per_client)
        for m in servers
        for n in clients
        for t in range(trials)
    ]
    return _sweep_points(specs, trials, "ops/s", jobs, f"fig10:{impl}", cache=cache)


def fig10_comparison(
    clients: Sequence[int] = FIG9_CLIENTS,
    n_servers: int = 16,
    creates_per_client: int = 32,
    trials: int = 3,
    jobs: Optional[int] = None,
) -> Dict[str, List[SweepPoint]]:
    """Figure 10 (a): the 16-server LWFS-vs-Lustre log-scale comparison."""
    impls = ("lwfs", "lustre-fpp")
    specs = [
        create_spec(impl, n, n_servers, seed=200 + t, creates_per_client=creates_per_client)
        for impl in impls
        for n in clients
        for t in range(trials)
    ]
    points = _sweep_points(specs, trials, "ops/s", jobs, "fig10a:comparison")
    per_impl = len(clients)
    return {impl: points[i * per_impl : (i + 1) * per_impl] for i, impl in enumerate(impls)}
