"""Closed-form models backing the paper's extrapolations.

§4 closes with: "if we make conservative approximations to scale the
results from our development cluster to a theoretical petaflop system with
100,000 compute nodes and 2000 I/O nodes, creating the files will require
multiple minutes to complete — roughly 10% of the total time for the
checkpoint operation."  :func:`petaflop_extrapolation` reproduces that
estimate from the same measured inputs (per-create MDS service time,
per-server bandwidth) the paper had.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..units import MiB

__all__ = ["CheckpointModel", "analytic_horizon", "petaflop_extrapolation"]


@dataclass(frozen=True)
class CheckpointModel:
    """Analytic checkpoint-time model for an n-client, m-server machine."""

    n_clients: int
    n_servers: int
    state_bytes: int
    server_bandwidth: float  # bytes/s per storage server
    mds_create_time: float  # seconds per create at the centralized MDS
    distributed_create_time: float  # seconds per create at a storage server

    # -- dump phase ----------------------------------------------------------
    def dump_time(self) -> float:
        """Bulk-dump time: total bytes through the aggregate bandwidth."""
        total = self.n_clients * self.state_bytes
        return total / (self.n_servers * self.server_bandwidth)

    # -- create phase -------------------------------------------------------------
    def centralized_create_time(self) -> float:
        """All creates serialized at one metadata server (traditional PFS)."""
        return self.n_clients * self.mds_create_time

    def distributed_create_time_total(self) -> float:
        """Creates spread over m storage servers (LWFS)."""
        per_server = -(-self.n_clients // self.n_servers)  # ceil division
        return per_server * self.distributed_create_time

    # -- summary ----------------------------------------------------------------------
    def summary(self) -> dict:
        dump = self.dump_time()
        central = self.centralized_create_time()
        distributed = self.distributed_create_time_total()
        return {
            "n_clients": self.n_clients,
            "n_servers": self.n_servers,
            "dump_time_s": dump,
            "pfs_create_time_s": central,
            "pfs_create_fraction": central / (central + dump),
            "lwfs_create_time_s": distributed,
            "lwfs_create_fraction": distributed / (distributed + dump),
            "create_speedup": central / distributed if distributed > 0 else float("inf"),
        }


def analytic_horizon(
    kind: str,
    impl: str,
    n_clients: int,
    n_servers: int,
    spec,
    config,
    state_bytes: int,
    creates_per_client: int = 1,
) -> float:
    """Model-predicted makespan of one trial, in simulated seconds.

    Purely analytic — a function of the spec/config inputs, never of a
    measured run — so every consumer that needs a deterministic schedule
    derives it from here and lands on identical values across processes:
    the sharded driver's window length (divide by its window target) and
    the metrics sampler's default period (divide by its sample target).

    *spec* is a :class:`~repro.machine.spec.MachineSpec`, *config* a
    :class:`~repro.sim.config.SimConfig`; both are duck-typed to keep
    this module import-light.
    """
    storage = spec.io_spec.storage
    bandwidth = storage.bandwidth if storage is not None else 400 * MiB
    model = CheckpointModel(
        n_clients=max(1, n_clients),
        n_servers=max(1, n_servers),
        state_bytes=max(1, state_bytes),
        server_bandwidth=bandwidth,
        mds_create_time=config.pfs.mds_create_cpu + config.pfs.mds_journal,
        distributed_create_time=config.lwfs.create_obj_cpu
        + (storage.meta_op_time if storage is not None else 150e-6),
    )
    if kind == "checkpoint":
        return model.dump_time()
    if impl.startswith("lustre"):
        return model.centralized_create_time() * max(1, creates_per_client)
    return model.distributed_create_time_total() * max(1, creates_per_client)


def petaflop_extrapolation(
    state_bytes: int = 10 * 1024 * MiB,
    mds_create_time: float = 1.25e-3,
    distributed_create_time: float = 0.25e-3,
    server_bandwidth: float = 500 * MiB,
) -> CheckpointModel:
    """The paper's 100k-compute / 2k-I/O-node thought experiment.

    Per-create costs are the dev-cluster-measured values (Fig. 10); the
    per-node state is sized as a memory-scale dump for a petaflop-class
    node (the paper's "conservative approximations").  With these inputs,
    100,000 serialized MDS creates take ~2 minutes — "multiple minutes ...
    roughly 10% of the total time for the checkpoint operation".
    """
    return CheckpointModel(
        n_clients=100_000,
        n_servers=2_000,
        state_bytes=state_bytes,
        server_bandwidth=server_bandwidth,
        mds_create_time=mds_create_time,
        distributed_create_time=distributed_create_time,
    )
