"""Static HTML dashboard: metric timelines + cross-trial regression.

Dependency-free reporting for the metrics subsystem: inline SVG, no
JavaScript, one self-contained file that CI can archive as an artifact
and a browser can open from disk.  Two kinds of panel:

* **Trial timelines** — the sampled series of one metered trial
  (:mod:`repro.metrics.export` document): goodput rate over simulated
  time with the health layer's degraded windows shaded, plus a compact
  per-instrument table with sparklines.
* **Regression plots** — the figure of merit of every recorded sweep in
  ``BENCH_sweep.json`` grouped by trial identity, one polyline per
  (kind, impl, clients, servers, seed) across sweep history.  A trial
  whose latest value strays more than :data:`REGRESSION_TOL` from its
  history median is flagged.

``python -m repro.bench.dashboard`` renders ``results/dashboard.html``
from the sweep file and any ``--metrics export.json`` documents.
"""

from __future__ import annotations

import argparse
import html
import json
import os
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "REGRESSION_TOL",
    "build_dashboard",
    "render_metrics_doc",
    "render_sweeps",
    "write_dashboard",
]

#: Relative deviation of a trial's latest figure of merit from its sweep
#: history median that gets the row flagged in the regression panel.
REGRESSION_TOL = 0.05

_PLOT_W = 640
_PLOT_H = 160
_PAD = 8

_CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #222; max-width: 60em; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 2em; }
table { border-collapse: collapse; font-size: 0.85em; }
th, td { padding: 2px 10px; text-align: right; border-bottom: 1px solid #eee; }
th { border-bottom: 1px solid #999; }
td.name, th.name { text-align: left; font-family: monospace; }
.ok { color: #2a7d2a; } .bad { color: #c0392b; font-weight: bold; }
.spark { font-family: monospace; white-space: pre; }
svg { background: #fafafa; border: 1px solid #ddd; }
.caption { font-size: 0.8em; color: #666; }
"""


def _scale(
    xs: Sequence[float], ys: Sequence[float], w: int, h: int
) -> List[Tuple[float, float]]:
    """Map data points into SVG pixel space (y grows downward)."""
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    dx = (x1 - x0) or 1.0
    dy = (y1 - y0) or 1.0
    return [
        (
            _PAD + (x - x0) / dx * (w - 2 * _PAD),
            h - _PAD - (y - y0) / dy * (h - 2 * _PAD),
        )
        for x, y in zip(xs, ys)
    ]


def _polyline(
    xs: Sequence[float], ys: Sequence[float], w: int, h: int, color: str
) -> str:
    pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in _scale(xs, ys, w, h))
    return (
        f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
        f'points="{pts}"/>'
    )


def _shade(
    t_lo: float,
    t_hi: float,
    x0: float,
    x1: float,
    w: int,
    h: int,
) -> str:
    dx = (x1 - x0) or 1.0
    a = _PAD + (max(t_lo, x0) - x0) / dx * (w - 2 * _PAD)
    b = _PAD + (min(t_hi, x1) - x0) / dx * (w - 2 * _PAD)
    if b <= a:
        return ""
    return (
        f'<rect x="{a:.1f}" y="0" width="{b - a:.1f}" height="{h}" '
        f'fill="#c0392b" opacity="0.15"/>'
    )


def render_metrics_doc(doc: Dict[str, Any], title: str = "trial") -> str:
    """One trial's panel: goodput timeline + instrument table."""
    from ..metrics.export import metrics_summary, sparkline
    from ..metrics.health import goodput_rates

    times, rates = goodput_rates(doc)
    parts: List[str] = [f"<h2>{html.escape(title)}</h2>"]
    health = doc.get("health") or {}
    summary = metrics_summary(doc)
    verdict = health.get("verdict", "n/a")
    cls = "ok" if verdict == "ok" else ("bad" if verdict == "degraded" else "")
    parts.append(
        f'<p>verdict <span class="{cls}">{html.escape(str(verdict))}</span>'
        f" &middot; {summary['samples']} samples"
        f" ({summary['synthesized']} synthesized)"
        f" &middot; period {summary['period']:.3g}s"
        f" &middot; degraded {float(health.get('degraded_seconds', 0.0)):.4g}s</p>"
    )
    if times:
        svg = [
            f'<svg width="{_PLOT_W}" height="{_PLOT_H}" '
            f'viewBox="0 0 {_PLOT_W} {_PLOT_H}">'
        ]
        for w in health.get("degraded_windows", ()):
            svg.append(
                _shade(
                    float(w["t_start"]), float(w["t_end"]),
                    times[0], times[-1], _PLOT_W, _PLOT_H,
                )
            )
        svg.append(_polyline(times, rates, _PLOT_W, _PLOT_H, "#2c6fb3"))
        svg.append("</svg>")
        parts.append("".join(svg))
        parts.append(
            '<p class="caption">goodput rate over simulated time; shaded = '
            "degraded SLO windows</p>"
        )
    for entry in health.get("time_to_recovery", ()):
        parts.append(
            "<p class=\"caption\">fault {kind} on {target}: injected at "
            "{t_inject:.4g}s, goodput restored at {t_recover:.4g}s "
            "(TTR {ttr:.4g}s)</p>".format(
                kind=html.escape(str(entry.get("kind", "?"))),
                target=html.escape(str(entry.get("target", "?"))),
                t_inject=float(entry.get("t_inject", 0.0)),
                t_recover=float(entry.get("t_recover", 0.0)),
                ttr=float(entry.get("time_to_recovery", 0.0)),
            )
        )
    rows = [
        "<table><tr><th class=\"name\">instrument</th><th>kind</th>"
        "<th>final</th><th class=\"name\">series</th></tr>"
    ]
    for inst in doc.get("instruments", ()):
        values = inst["series"]["values"]
        rows.append(
            "<tr><td class=\"name\">{name}</td><td>{kind}</td>"
            "<td>{final:.6g}</td><td class=\"spark\">{spark}</td></tr>".format(
                name=html.escape(inst["name"]),
                kind=html.escape(inst["kind"]),
                final=float(inst.get("final", 0.0)),
                spark=html.escape(sparkline(values)),
            )
        )
    rows.append("</table>")
    parts.append("".join(rows))
    return "\n".join(parts)


def _trial_identity(row: Dict[str, Any]) -> str:
    return "{kind}/{impl} c{n_clients} s{n_servers} seed{seed}".format(
        kind=row.get("kind", "?"), impl=row.get("impl", "?"),
        n_clients=row.get("n_clients", "?"),
        n_servers=row.get("n_servers", "?"), seed=row.get("seed", "?"),
    )


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def render_sweeps(sweep_doc: Dict[str, Any]) -> str:
    """The cross-trial regression panel over recorded sweep history."""
    sweeps = sweep_doc.get("sweeps", [])
    history: Dict[str, List[Tuple[int, float, str]]] = {}
    for i, sweep in enumerate(sweeps):
        for row in sweep.get("per_trial", ()):
            value = row.get("value")
            if not isinstance(value, (int, float)):
                continue
            key = _trial_identity(row)
            history.setdefault(key, []).append(
                (i, float(value), str(row.get("unit", "")))
            )
    if not history:
        return "<h2>regression</h2><p>no recorded sweeps</p>"
    parts = ["<h2>cross-trial regression</h2>"]
    parts.append(
        '<p class="caption">figure of merit per trial identity across the '
        f"last {len(sweeps)} recorded sweeps; flagged when the latest value "
        f"strays &gt;{REGRESSION_TOL:.0%} from the history median</p>"
    )
    svg = [
        f'<svg width="{_PLOT_W}" height="{_PLOT_H}" '
        f'viewBox="0 0 {_PLOT_W} {_PLOT_H}">'
    ]
    palette = ("#2c6fb3", "#b35a2c", "#2cb36f", "#8e2cb3", "#b32c50", "#50b32c")
    # Normalize each identity by its own median so unrelated magnitudes
    # share one canvas — the *shape* (drift) is what the panel shows.
    for n, (key, points) in enumerate(sorted(history.items())):
        if len(points) < 2:
            continue
        med = _median([v for _, v, _ in points]) or 1.0
        xs = [float(i) for i, _, _ in points]
        ys = [v / med for _, v, _ in points]
        svg.append(_polyline(xs, ys, _PLOT_W, _PLOT_H, palette[n % len(palette)]))
    svg.append("</svg>")
    parts.append("".join(svg))
    rows = [
        "<table><tr><th class=\"name\">trial</th><th>sweeps</th>"
        "<th>median</th><th>latest</th><th>drift</th><th></th></tr>"
    ]
    for key, points in sorted(history.items()):
        values = [v for _, v, _ in points]
        unit = points[-1][2]
        med = _median(values)
        latest = values[-1]
        drift = (latest - med) / med if med else 0.0
        flagged = abs(drift) > REGRESSION_TOL and len(values) > 1
        rows.append(
            "<tr><td class=\"name\">{key}</td><td>{n}</td>"
            "<td>{med:.6g}</td><td>{latest:.6g} {unit}</td>"
            "<td>{drift:+.1%}</td><td class=\"{cls}\">{flag}</td></tr>".format(
                key=html.escape(key), n=len(values), med=med, latest=latest,
                unit=html.escape(unit), drift=drift,
                cls="bad" if flagged else "ok",
                flag="REGRESSION" if flagged else "ok",
            )
        )
    rows.append("</table>")
    parts.append("".join(rows))
    return "\n".join(parts)


def build_dashboard(
    metrics_docs: Iterable[Tuple[str, Dict[str, Any]]] = (),
    sweep_doc: Optional[Dict[str, Any]] = None,
    title: str = "repro metrics dashboard",
) -> str:
    """The full self-contained HTML page."""
    body: List[str] = [f"<h1>{html.escape(title)}</h1>"]
    for name, doc in metrics_docs:
        body.append(render_metrics_doc(doc, title=name))
    if sweep_doc is not None:
        body.append(render_sweeps(sweep_doc))
    if len(body) == 1:
        body.append("<p>nothing to show: no metrics documents, no sweeps</p>")
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head>"
        "<body>\n" + "\n".join(body) + "\n</body></html>\n"
    )


def write_dashboard(
    path: str,
    metrics_docs: Iterable[Tuple[str, Dict[str, Any]]] = (),
    sweep_doc: Optional[Dict[str, Any]] = None,
) -> str:
    """Render and write the dashboard; returns *path*."""
    page = build_dashboard(metrics_docs, sweep_doc)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(page)
    return path


def main(argv: Optional[List[str]] = None) -> int:
    from .executor import sweep_json_path

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.dashboard",
        description="Render the metrics/regression dashboard to HTML.",
    )
    parser.add_argument(
        "--sweep", default=None,
        help="BENCH_sweep.json path (default: the repo's recorded sweeps)",
    )
    parser.add_argument(
        "--metrics", action="append", default=[], metavar="EXPORT_JSON",
        help="metrics export document(s) to render as trial timelines",
    )
    parser.add_argument(
        "-o", "--output", default=os.path.join("results", "dashboard.html"),
    )
    args = parser.parse_args(argv)

    sweep_doc = None
    sweep_path = args.sweep or sweep_json_path()
    try:
        with open(sweep_path, encoding="utf-8") as fh:
            sweep_doc = json.load(fh)
    except (OSError, ValueError):
        sweep_doc = None

    docs: List[Tuple[str, Dict[str, Any]]] = []
    for path in args.metrics:
        with open(path, encoding="utf-8") as fh:
            docs.append((os.path.basename(path), json.load(fh)))

    out = write_dashboard(args.output, docs, sweep_doc)
    print(f"dashboard: {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
