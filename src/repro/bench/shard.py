"""Sharded multiprocess simulation of one big run.

One 10k-rank checkpoint is a single discrete-event simulation, so the
sweep executor's trial-level parallelism cannot touch it.  This module
splits that *single* run across worker processes.

The partition is by **server group**, not by rank block.  Checkpoint
placement is round-robin (``placement.place(rank, n_servers)``), so the
ranks writing to one server group never contend with another group's
storage servers or NICs — each shard owns its servers outright and
simulates only the clients placed on them.  (Rank-block sharding would
be useless here: under symmetric-client collapsing every shard would
still contain every server equivalence class and do all the work.)

What *is* shared between shards are the service nodes (authz, MDS): in
the real run all n clients hit them.  Each worker gets a local replica
scaled by its client share (``SimConfig.service_scale``) — the
mean-field split: n/S clients against capacity/S see the same queueing
delay as n clients against full capacity, so the makespan is preserved
without cross-process state.  The residual error (boundary effects of
the split, distinct jitter draws per shard) is what the ≤1% contract
in the tests and CI gate pins.

Workers run in conservative lockstep: simulated time advances in fixed
windows (never shorter than the fabric's minimum wire latency — the
soonest any cross-shard influence could propagate), and every worker
synchronizes with the parent at each window barrier before entering the
next.  ``Environment.window_barriers`` counts the crossings; the merged
result sums them.  The window schedule is deterministic (derived from
:class:`repro.bench.analytic.CheckpointModel`), so repeated sharded
runs produce bit-identical merged results — with or without a usable
``fork``, since the barrier exchanges no simulation state.

Sharding is requested with ``RunOptions(shards=N)`` / ``--shards N`` /
``REPRO_SHARD=N``; ``REPRO_SHARD=0`` is the kill switch.  Runs that
need a global timeline (fault plans, tracing, ``lustre-shared``'s
all-to-all striping) fall back to single-process execution with a
one-time warning.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional

from ..machine.presets import dev_cluster
from ..machine.spec import MachineSpec
from ..sim.config import RunOptions, SimConfig
from ..units import MiB
from .analytic import analytic_horizon
from .harness import (
    TrialResult,
    _build,
    _collapse_stats,
    _finish_metrics,
    _kernel_stats,
    _maybe_metrics,
    checkpoint_main,
    create_main,
)

__all__ = [
    "ShardPlan",
    "plan_shards",
    "run_sharded_checkpoint_trial",
    "run_sharded_create_trial",
]

#: Windows the horizon estimate is divided into (barrier count target).
TARGET_WINDOWS = 16

#: Hard cap on barrier crossings: if the analytic horizon estimate was
#: wildly short, the remainder of the run finishes un-windowed rather
#: than barrier-spinning forever.
MAX_WINDOWS = 512

#: Fallback reasons already warned about (one warning per reason).
_FALLBACK_WARNED: set = set()


@dataclass(frozen=True)
class ShardPlan:
    """One worker's slice: its server group and the clients placed on it."""

    index: int
    n_clients: int
    n_servers: int
    #: This shard's share of every *service* node (mean-field split).
    service_scale: float
    #: Global servers / this shard's servers — the 2PC chain stretch.
    txn_fanout_scale: float
    seed: int


def plan_shards(
    n_clients: int, n_servers: int, shards: int, seed: int
) -> List[ShardPlan]:
    """Balanced server-group partition with proportional client counts."""
    shards = max(1, min(shards, n_servers, n_clients))
    plans = []
    for k in range(shards):
        m_k = n_servers // shards + (1 if k < n_servers % shards else 0)
        n_k = n_clients // shards + (1 if k < n_clients % shards else 0)
        plans.append(
            ShardPlan(
                index=k,
                n_clients=n_k,
                n_servers=m_k,
                service_scale=n_k / n_clients,
                txn_fanout_scale=n_servers / m_k,
                # Distinct deterministic jitter streams per shard.
                seed=seed + 7919 * k,
            )
        )
    return plans


def _warn_fallback(reason: str) -> None:
    if reason in _FALLBACK_WARNED:
        return
    _FALLBACK_WARNED.add(reason)
    warnings.warn(
        f"sharded execution unavailable ({reason}); running single-process",
        RuntimeWarning,
        stacklevel=4,
    )


def _shardable(impl: str, opts: RunOptions) -> Optional[str]:
    """``None`` when the run can shard, else the fallback reason."""
    if opts.faults is not None:
        return "fault plans need the global timeline"
    if opts.trace:
        return "tracing needs a single span timeline"
    if impl == "lustre-shared":
        return "shared-file striping couples every rank to every OST"
    return None


def _window_length(
    kind: str,
    impl: str,
    plan: ShardPlan,
    spec: MachineSpec,
    config: SimConfig,
    state_bytes: int,
    creates_per_client: int,
) -> float:
    """Deterministic window schedule from the analytic checkpoint model.

    The conservative-sync lower bound is the fabric's minimum wire
    latency: nothing can cross shards faster, so a window can never
    reorder a (future) cross-shard interaction.  The practical length is
    the analytic horizon divided into :data:`TARGET_WINDOWS` slices.
    """
    wire_min = min(
        spec.compute_spec.nic.latency,
        spec.io_spec.nic.latency,
        spec.service_spec.nic.latency,
    ) + spec.hop_latency
    horizon = analytic_horizon(
        kind, impl, plan.n_clients, plan.n_servers, spec, config,
        state_bytes, creates_per_client,
    )
    return max(horizon / TARGET_WINDOWS, wire_min, 1e-6)


def _simulate_shard(
    kind: str,
    impl: str,
    plan: ShardPlan,
    spec: Optional[MachineSpec],
    config: Optional[SimConfig],
    opts: RunOptions,
    state_bytes: int,
    creates_per_client: int,
    deploy_kwargs: Dict[str, Any],
    barrier_cb: Optional[Callable[[float], None]] = None,
) -> Dict[str, Any]:
    """Run one shard's slice to completion, windowed; return its payload.

    The windowed drive is identical with and without a live barrier
    callback — the callback only blocks host time, never simulated time
    — so sequential (no-fork) and multiprocess execution merge to
    bit-identical results.
    """
    spec = spec or dev_cluster()
    config = replace(
        config or SimConfig(),
        service_scale=plan.service_scale,
        # 2PC prepare/commit chains over the GLOBAL server count; stretch
        # this shard's local chain back to full length (see end_txn).
        txn_fanout_scale=plan.txn_fanout_scale,
    )
    opts_local = replace(opts, shards=1)
    cluster, deployment, checkpointer, app, _injector = _build(
        impl, plan.n_clients, plan.n_servers, plan.seed, spec, config,
        opts=opts_local, collapse_state_bytes=state_bytes, **deploy_kwargs
    )
    env = cluster.env
    # opts.metrics_period was pinned by the parent from the GLOBAL
    # analytic horizon (see _run_sharded), so every shard samples on the
    # identical tick grid and the merge is a plain elementwise sum.
    sampler = _maybe_metrics(
        cluster, deployment, opts_local, kind, impl, plan.n_clients,
        plan.n_servers, state_bytes=state_bytes,
        creates_per_client=creates_per_client,
    )
    if kind == "checkpoint":
        main = checkpoint_main(checkpointer, state_bytes)
    else:
        main = create_main(checkpointer, creates_per_client)
    procs = app.launch(main)
    done = env.all_of(procs)
    window = _window_length(
        kind, impl, plan, spec, config, state_bytes, creates_per_client
    )
    t_next = window
    while not done.triggered and env.window_barriers < MAX_WINDOWS:
        gate = env.timeout(t_next - env.now)
        env.run(env.any_of((done, gate)))
        if done.triggered:
            break
        env.window_barriers += 1
        if barrier_cb is not None:
            barrier_cb(env.now)
        t_next += window
    if not done.triggered:  # pragma: no cover - horizon estimate too short
        env.run(done)
    results = [p.value for p in procs]
    stats = _kernel_stats(cluster)
    stats.update(_collapse_stats(app))
    metrics_doc = _finish_metrics(sampler, None)
    if sampler is not None:
        stats.update(sampler.stats())
    return {
        "count": len(results),
        "sum_elapsed": sum(r.elapsed for r in results),
        "max_elapsed": max(r.elapsed for r in results),
        "create_max_elapsed": max(r.create_elapsed for r in results),
        "stats": stats,
        "metrics": metrics_doc,
    }


def _shard_worker(conn, args: tuple) -> None:
    """Child-process entry: simulate one shard, barriers over the pipe."""
    try:
        def barrier_cb(now: float) -> None:
            conn.send(("window", now))
            conn.recv()  # "go"

        payload = _simulate_shard(*args, barrier_cb=barrier_cb)
        conn.send(("result", payload))
    except BaseException as exc:  # pragma: no cover - surfaced by parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except OSError:
            pass
    finally:
        conn.close()


def _drive_workers(arg_sets: List[tuple]) -> Optional[List[Dict[str, Any]]]:
    """Fork one worker per shard and run the barrier protocol.

    Returns ``None`` when process infrastructure is unavailable (the
    caller then simulates the shards sequentially, same results).
    """
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None
    conns = []
    workers = []
    try:
        try:
            for args in arg_sets:
                parent, child = ctx.Pipe()
                proc = ctx.Process(target=_shard_worker, args=(child, args))
                proc.start()
                child.close()
                conns.append(parent)
                workers.append(proc)
        except OSError:
            return None
        payloads: List[Optional[Dict[str, Any]]] = [None] * len(arg_sets)
        active = dict(enumerate(conns))
        while active:
            release = []
            for idx in sorted(active):
                conn = active[idx]
                try:
                    msg = conn.recv()
                except EOFError:
                    raise RuntimeError(f"shard {idx} died mid-run") from None
                if msg[0] == "window":
                    release.append(conn)
                elif msg[0] == "result":
                    payloads[idx] = msg[1]
                    del active[idx]
                else:
                    raise RuntimeError(f"shard {idx} failed: {msg[1]}")
            # Barrier: every still-running shard reported its window;
            # release them into the next one together.
            for conn in release:
                conn.send("go")
        return payloads  # type: ignore[return-value]
    finally:
        for conn in conns:
            conn.close()
        for proc in workers:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()


def _merge(
    kind: str,
    impl: str,
    n_clients: int,
    n_servers: int,
    state_bytes: int,
    creates_per_client: int,
    payloads: List[Dict[str, Any]],
) -> TrialResult:
    """Combine shard payloads into one TrialResult.

    Shards are independent slices of one machine running concurrently,
    so elapsed times merge as maxima (the slowest shard sets the
    makespan) and event-loop work merges as sums.
    """
    max_elapsed = max(p["max_elapsed"] for p in payloads)
    total_count = sum(p["count"] for p in payloads)
    mean_elapsed = sum(p["sum_elapsed"] for p in payloads) / total_count
    extra: Dict[str, float] = {}
    sum_keys = (
        "events_processed", "events_skipped_cancelled",
        "events_fast_forwarded", "window_barriers",
        "flows_active", "rate_recomputes", "ranks_simulated",
        "metrics_ticks", "metrics_samples", "metrics_synthesized",
    )
    max_keys = (
        "peak_event_queue", "sim_seconds", "max_multiplicity",
        "metrics_period",
    )
    for p in payloads:
        for key, value in p["stats"].items():
            if key in sum_keys:
                extra[key] = extra.get(key, 0.0) + float(value)
            elif key in max_keys:
                extra[key] = max(extra.get(key, 0.0), float(value))
    extra["shards"] = float(len(payloads))
    if kind == "create":
        extra["creates_per_s"] = n_clients * creates_per_client / max_elapsed
    metrics_doc = _merge_metrics([p.get("metrics") for p in payloads])
    return TrialResult(
        impl=impl,
        n_clients=n_clients,
        n_servers=n_servers,
        state_bytes=state_bytes if kind == "checkpoint" else 0,
        max_elapsed=max_elapsed,
        mean_elapsed=mean_elapsed,
        throughput_mb_s=(
            (n_clients * state_bytes / MiB) / max_elapsed
            if kind == "checkpoint" else 0.0
        ),
        create_max_elapsed=max(p["create_max_elapsed"] for p in payloads),
        extra=extra,
        metrics=metrics_doc,
    )


def _merge_metrics(docs: List[Optional[dict]]) -> Optional[dict]:
    """Sum per-shard series into one global document, on lockstep grids.

    Every shard sampled on the identical tick grid (the parent pinned
    ``metrics_period`` from the global analytic horizon), so a merged
    sample is the elementwise sum over shards — shards are disjoint
    slices of one machine, so sums *are* the global totals.  A shard
    whose run ended before tick ``i`` contributes its final sampled
    value (its counters are frozen once its slice drains).  Same-named
    per-server series (each shard names its servers ``stor0..``) sum the
    k-th server of every shard group; the aggregate series are the
    global story.  The documented cross-mode tolerance is on final
    model-scope totals (~2%: distinct jitter draws and the mean-field
    service split), pinned by the shard equivalence tests.
    """
    docs = [d for d in docs if d is not None]
    if not docs:
        return None
    base = docs[0]
    merged_instruments = []
    by_name_all = [
        {inst["name"]: inst for inst in d["instruments"]} for d in docs
    ]
    last_tick = 0
    for per_doc in by_name_all:
        for inst in per_doc.values():
            indices = inst["series"]["indices"]
            if indices:
                last_tick = max(last_tick, indices[-1])
    # Union of names, insertion-ordered (shard 0 first, then any series
    # only a bigger shard carries) — deterministic export order.
    ordered: Dict[str, dict] = {}
    for per_doc in by_name_all:
        for name, inst in per_doc.items():
            ordered.setdefault(name, inst)
    for name, inst in ordered.items():
        parts = [b[name] for b in by_name_all if name in b]
        values_by_tick: Dict[int, float] = {}
        final = 0.0
        for part in parts:
            series = dict(zip(part["series"]["indices"], part["series"]["values"]))
            tail = part["series"]["values"][-1] if part["series"]["values"] else 0.0
            part_last = part["series"]["indices"][-1] if part["series"]["indices"] else 0
            for i in range(1, last_tick + 1):
                v = series.get(i, tail if i > part_last else 0.0)
                values_by_tick[i] = values_by_tick.get(i, 0.0) + v
            f = part.get("final")
            final += float(f) if isinstance(f, (int, float)) else tail
        ticks = sorted(values_by_tick)
        merged_instruments.append(
            {
                "name": name,
                "kind": inst["kind"],
                "unit": inst["unit"],
                "scope": inst["scope"],
                "series": {
                    "indices": ticks,
                    "values": [values_by_tick[i] for i in ticks],
                    "dropped": sum(p["series"].get("dropped", 0) for p in parts),
                },
                "final": final,
            }
        )
    merged = {
        "schema": base["schema"],
        "t0": min(float(d["t0"]) for d in docs),
        "period": float(base["period"]),
        "t_end": max(float(d["t_end"]) for d in docs),
        "sampler": {
            "ticks": sum(d["sampler"]["ticks"] for d in docs),
            "samples": sum(d["sampler"]["samples"] for d in docs),
            "synthesized": sum(d["sampler"]["synthesized"] for d in docs),
            "max_stride": max(d["sampler"]["max_stride"] for d in docs),
        },
        "instruments": merged_instruments,
        "merged_shards": len(docs),
    }
    from ..metrics import evaluate_health

    # Sharded runs never carry fault plans (_shardable rejects them);
    # the merged health still reports baseline/verdict on global goodput.
    merged["health"] = evaluate_health(merged).to_dict()
    return merged


def _run_sharded(
    kind: str,
    impl: str,
    n_clients: int,
    n_servers: int,
    state_bytes: int,
    creates_per_client: int,
    seed: int,
    spec: Optional[MachineSpec],
    config: Optional[SimConfig],
    opts: RunOptions,
    deploy_kwargs: Dict[str, Any],
) -> TrialResult:
    reason = _shardable(impl, opts)
    if reason is not None:
        _warn_fallback(reason)
        from .harness import run_checkpoint_trial, run_create_trial

        single = replace(opts, shards=1)
        if kind == "checkpoint":
            return run_checkpoint_trial(
                impl, n_clients, n_servers, state_bytes=state_bytes, seed=seed,
                spec=spec, config=config, options=single, **deploy_kwargs
            )
        return run_create_trial(
            impl, n_clients, n_servers, creates_per_client=creates_per_client,
            seed=seed, spec=spec, config=config, options=single, **deploy_kwargs
        )
    if opts.metrics and opts.metrics_period is None:
        # Pin the sampling grid from the GLOBAL analytic horizon before
        # fan-out: each shard would otherwise derive a period from its
        # own slice and the grids would never line up for the merge.
        from ..metrics import default_period

        horizon = analytic_horizon(
            kind, impl, n_clients, n_servers, spec or dev_cluster(),
            config or SimConfig(), state_bytes, creates_per_client,
        )
        opts = replace(opts, metrics_period=default_period(horizon))
    plans = plan_shards(n_clients, n_servers, opts.shards, seed)
    arg_sets = [
        (kind, impl, plan, spec, config, opts, state_bytes,
         creates_per_client, deploy_kwargs)
        for plan in plans
    ]
    # Worker processes only pay off with real cores to run on; on a
    # starved box the shards run sequentially in-process instead.  The
    # partition still helps there — each slice's event queue, flow
    # network, and collective fan-in are a fraction of the full run's,
    # and the superlinear per-event costs shrink with them.  Results are
    # bit-identical either way (the barrier exchanges no simulation
    # state), so the choice is pure scheduling.
    parallel_ok = len(plans) > 1 and (os.cpu_count() or 1) > 1
    payloads = _drive_workers(arg_sets) if parallel_ok else None
    if payloads is None:
        payloads = [_simulate_shard(*args) for args in arg_sets]
    return _merge(
        kind, impl, n_clients, n_servers, state_bytes, creates_per_client,
        payloads,
    )


def run_sharded_checkpoint_trial(
    impl: str,
    n_clients: int,
    n_servers: int,
    state_bytes: int,
    seed: int,
    spec: Optional[MachineSpec] = None,
    config: Optional[SimConfig] = None,
    opts: Optional[RunOptions] = None,
    **deploy_kwargs,
) -> TrialResult:
    """One Figure-9 dump split over ``opts.shards`` worker processes."""
    opts = (opts or RunOptions()).resolved()
    return _run_sharded(
        "checkpoint", impl, n_clients, n_servers, state_bytes, 0,
        seed, spec, config, opts, deploy_kwargs,
    )


def run_sharded_create_trial(
    impl: str,
    n_clients: int,
    n_servers: int,
    creates_per_client: int,
    seed: int,
    spec: Optional[MachineSpec] = None,
    config: Optional[SimConfig] = None,
    opts: Optional[RunOptions] = None,
    **deploy_kwargs,
) -> TrialResult:
    """One Figure-10 create phase split over ``opts.shards`` workers."""
    opts = (opts or RunOptions()).resolved()
    return _run_sharded(
        "create", impl, n_clients, n_servers, 0, creates_per_client,
        seed, spec, config, opts, deploy_kwargs,
    )
