"""Experiment harness: build a cluster, run a checkpoint, measure.

Each trial constructs a fresh dev-cluster simulation (fresh seed →
jittered service times → the error bars of the paper's plots), runs the
chosen checkpoint implementation at (n_clients, n_servers), and reports
the figure-of-merit the paper uses:

* dump phase (Fig. 9): aggregate MB/s = n_clients * size / max-rank time,
* create phase (Fig. 10): aggregate creates/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from ..iolib.checkpoint import LWFSCheckpointer, PFSCheckpointer
from ..machine.presets import dev_cluster
from ..machine.spec import MachineSpec
from ..parallel.app import ParallelApp
from ..pfs.deployment import PFSDeployment
from ..sim.cluster import SimCluster
from ..sim.config import SimConfig
from ..sim.deployment import LWFSDeployment
from ..storage.data import SyntheticData
from ..units import MiB

__all__ = [
    "IMPLEMENTATIONS",
    "TrialResult",
    "SweepPoint",
    "run_checkpoint_trial",
    "run_create_trial",
    "measure_point",
    "measure_create_point",
]

#: The three implementations compared in §4.
IMPLEMENTATIONS = ("lwfs", "lustre-fpp", "lustre-shared")

#: Paper workload: every client writes 512 MB.  Experiments may scale it
#: down; throughput in MB/s is size-invariant once transfers amortize.
PAPER_STATE_BYTES = 512 * MiB


@dataclass
class TrialResult:
    """One simulated run at one (impl, clients, servers) point."""

    impl: str
    n_clients: int
    n_servers: int
    state_bytes: int
    max_elapsed: float
    mean_elapsed: float
    throughput_mb_s: float
    create_max_elapsed: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Completed spans when the trial ran with ``trace=True`` (else None).
    #: A plain span list — not the Tracer — so results cross the sweep
    #: executor's process-pool boundary.
    trace: Optional[list] = None


@dataclass
class SweepPoint:
    """Aggregated statistics over trials at one sweep point."""

    impl: str
    n_clients: int
    n_servers: int
    mean: float
    stdev: float
    unit: str
    trials: List[float] = field(default_factory=list)


def _build(
    impl: str,
    n_clients: int,
    n_servers: int,
    seed: int,
    spec: Optional[MachineSpec] = None,
    config: Optional[SimConfig] = None,
    collapse: bool = False,
    collapse_state_bytes: int = 0,
    flow: bool = False,
    **deploy_kwargs,
):
    spec = spec or dev_cluster()
    config = config or SimConfig()
    config = replace(config, seed=seed)
    if flow:
        config = replace(config, flow=True)
    cluster = SimCluster(
        spec,
        config,
        compute_nodes=min(spec.compute_nodes, max(1, n_clients)),
        io_nodes=spec.io_nodes,
        service_nodes=1,
    )
    if impl == "lwfs":
        deployment = LWFSDeployment(cluster, n_storage_servers=n_servers, **deploy_kwargs)
        checkpointer = LWFSCheckpointer(deployment)
    elif impl == "lustre-fpp":
        deployment = PFSDeployment(cluster, n_osts=n_servers)
        checkpointer = PFSCheckpointer(deployment, mode="file-per-process")
    elif impl == "lustre-shared":
        deployment = PFSDeployment(cluster, n_osts=n_servers)
        checkpointer = PFSCheckpointer(deployment, mode="shared")
    else:
        raise ValueError(f"unknown implementation {impl!r}; expected one of {IMPLEMENTATIONS}")
    plan = None
    if collapse:
        from ..sim.collapse import collapse_plan

        plan = collapse_plan(
            n_clients, lambda r: checkpointer.collapse_key(r, collapse_state_bytes)
        )
    app = ParallelApp(
        cluster.env, cluster.fabric, cluster.compute_nodes, n_ranks=n_clients, collapse=plan
    )
    return cluster, deployment, checkpointer, app


def run_checkpoint_trial(
    impl: str,
    n_clients: int,
    n_servers: int,
    state_bytes: int = PAPER_STATE_BYTES,
    seed: int = 0,
    spec: Optional[MachineSpec] = None,
    config: Optional[SimConfig] = None,
    trace: bool = False,
    collapse: bool = False,
    flow: bool = False,
    **deploy_kwargs,
) -> TrialResult:
    """One full checkpoint (setup once + one dump), Figure 9 workload.

    With ``trace=True`` a :class:`~repro.trace.Tracer` is installed on the
    environment before the run and the completed spans land on
    ``TrialResult.trace``.  Tracing never schedules events, so the
    simulated timings are bit-identical either way.

    ``collapse=True`` simulates one representative per symmetric client
    class (see :mod:`repro.sim.collapse`) — same aggregate figures within
    jitter tolerance, far fewer simulated processes.

    ``flow=True`` rides the fluid flow engine for the steady-state middle
    of each bulk stream (see :mod:`repro.network.flow`) — within 1% of the
    exact chunked timings, far fewer kernel events.  ``REPRO_FLOW=0``
    overrides it back to the exact path.
    """
    cluster, deployment, checkpointer, app = _build(
        impl, n_clients, n_servers, seed, spec, config,
        collapse=collapse, collapse_state_bytes=state_bytes, flow=flow,
        **deploy_kwargs
    )
    tracer = _maybe_trace(cluster, trace)

    def main(ctx):
        yield from checkpointer.setup(ctx)
        yield from ctx.barrier()
        result = yield from checkpointer.checkpoint(
            ctx, SyntheticData(state_bytes, seed=ctx.rank)
        )
        return result

    results = app.run(main)
    max_elapsed = max(r.elapsed for r in results)
    mean_elapsed = sum(r.elapsed for r in results) / len(results)
    extra = _kernel_stats(cluster)
    extra.update(_collapse_stats(app))
    return TrialResult(
        impl=impl,
        n_clients=n_clients,
        n_servers=n_servers,
        state_bytes=state_bytes,
        max_elapsed=max_elapsed,
        mean_elapsed=mean_elapsed,
        throughput_mb_s=(n_clients * state_bytes / MiB) / max_elapsed,
        create_max_elapsed=max(r.create_elapsed for r in results),
        extra=extra,
        trace=tracer.spans if tracer is not None else None,
    )


def run_create_trial(
    impl: str,
    n_clients: int,
    n_servers: int,
    creates_per_client: int = 32,
    seed: int = 0,
    spec: Optional[MachineSpec] = None,
    config: Optional[SimConfig] = None,
    trace: bool = False,
    collapse: bool = False,
    flow: bool = False,
    **deploy_kwargs,
) -> TrialResult:
    """Create-only phase (Figure 10 workload): empty objects/files."""
    cluster, deployment, checkpointer, app = _build(
        impl, n_clients, n_servers, seed, spec, config,
        collapse=collapse, flow=flow, **deploy_kwargs
    )
    tracer = _maybe_trace(cluster, trace)

    def main(ctx):
        yield from checkpointer.setup(ctx)
        yield from ctx.barrier()
        result = yield from checkpointer.create_objects(ctx, creates_per_client)
        return result

    results = app.run(main)
    max_elapsed = max(r.elapsed for r in results)
    total_creates = n_clients * creates_per_client
    extra = _kernel_stats(cluster)
    extra.update(_collapse_stats(app))
    extra["creates_per_s"] = total_creates / max_elapsed
    return TrialResult(
        impl=impl,
        n_clients=n_clients,
        n_servers=n_servers,
        state_bytes=0,
        max_elapsed=max_elapsed,
        mean_elapsed=sum(r.elapsed for r in results) / len(results),
        throughput_mb_s=0.0,
        extra=extra,
        trace=tracer.spans if tracer is not None else None,
    )


def _maybe_trace(cluster, trace: bool):
    if not trace:
        return None
    from ..trace import Tracer

    return Tracer.install(cluster.env)


def _kernel_stats(cluster) -> Dict[str, float]:
    """Deterministic event-loop stats for one finished trial."""
    from ..trace.stats import kernel_stats

    return {k: float(v) for k, v in kernel_stats(cluster.env).items()}


def _collapse_stats(app) -> Dict[str, float]:
    """Collapse-plan summary for the trial record (empty when exact)."""
    if not app.collapse:
        return {}
    mults = [ctx.multiplicity for ctx in app.contexts]
    return {
        "ranks_simulated": float(len(mults)),
        "max_multiplicity": float(max(mults)),
    }


def _aggregate(impl, n_clients, n_servers, values: List[float], unit: str) -> SweepPoint:
    if not values:
        raise ValueError(
            f"cannot aggregate an empty trials list for "
            f"({impl}, clients={n_clients}, servers={n_servers})"
        )
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1) if len(values) > 1 else 0.0
    return SweepPoint(
        impl=impl,
        n_clients=n_clients,
        n_servers=n_servers,
        mean=mean,
        stdev=math.sqrt(var),
        unit=unit,
        trials=values,
    )


def measure_point(
    impl: str,
    n_clients: int,
    n_servers: int,
    trials: int = 3,
    state_bytes: int = PAPER_STATE_BYTES,
    base_seed: int = 100,
    jobs: Optional[int] = 1,
    **kwargs,
) -> SweepPoint:
    """Dump-phase throughput (MB/s) averaged over *trials* runs.

    ``jobs`` fans the trials out over worker processes (see
    :mod:`repro.bench.executor`); the default of 1 keeps a single point
    in-process.  Results are bit-identical either way.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    from .executor import checkpoint_spec, run_trials

    specs = [
        checkpoint_spec(
            impl, n_clients, n_servers, seed=base_seed + t, state_bytes=state_bytes, **kwargs
        )
        for t in range(trials)
    ]
    values = [o.value for o in run_trials(specs, jobs=jobs)]
    return _aggregate(impl, n_clients, n_servers, values, "MB/s")


def measure_create_point(
    impl: str,
    n_clients: int,
    n_servers: int,
    trials: int = 3,
    creates_per_client: int = 32,
    base_seed: int = 200,
    jobs: Optional[int] = 1,
    **kwargs,
) -> SweepPoint:
    """Create-phase throughput (ops/s) averaged over *trials* runs."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    from .executor import create_spec, run_trials

    specs = [
        create_spec(
            impl,
            n_clients,
            n_servers,
            seed=base_seed + t,
            creates_per_client=creates_per_client,
            **kwargs,
        )
        for t in range(trials)
    ]
    values = [o.value for o in run_trials(specs, jobs=jobs)]
    return _aggregate(impl, n_clients, n_servers, values, "ops/s")
