"""Experiment harness: build a cluster, run a checkpoint, measure.

Each trial constructs a fresh dev-cluster simulation (fresh seed →
jittered service times → the error bars of the paper's plots), runs the
chosen checkpoint implementation at (n_clients, n_servers), and reports
the figure-of-merit the paper uses:

* dump phase (Fig. 9): aggregate MB/s = n_clients * size / max-rank time,
* create phase (Fig. 10): aggregate creates/s.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from ..iolib.checkpoint import CheckpointError, LWFSCheckpointer, PFSCheckpointer
from ..machine.presets import dev_cluster
from ..machine.spec import MachineSpec
from ..parallel.app import ParallelApp
from ..pfs.deployment import PFSDeployment
from ..sim.cluster import SimCluster
from ..sim.config import RunOptions, SimConfig
from ..sim.deployment import LWFSDeployment
from ..storage.data import SyntheticData
from ..units import MiB

__all__ = [
    "IMPLEMENTATIONS",
    "IMPL_BUILDERS",
    "TrialResult",
    "SweepPoint",
    "run_checkpoint_trial",
    "run_create_trial",
    "checkpoint_main",
    "create_main",
    "measure_point",
    "measure_create_point",
]

#: The three implementations compared in §4.
IMPLEMENTATIONS = ("lwfs", "lustre-fpp", "lustre-shared")

#: Paper workload: every client writes 512 MB.  Experiments may scale it
#: down; throughput in MB/s is size-invariant once transfers amortize.
PAPER_STATE_BYTES = 512 * MiB

#: Application-level checkpoint attempts under fault injection: an
#: aborted dump (2PC rollback) is re-driven up to this many times.
CKPT_ATTEMPTS = 3


@dataclass
class TrialResult:
    """One simulated run at one (impl, clients, servers) point."""

    impl: str
    n_clients: int
    n_servers: int
    state_bytes: int
    max_elapsed: float
    mean_elapsed: float
    throughput_mb_s: float
    create_max_elapsed: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)
    #: Completed spans when the trial ran with ``trace=True`` (else None).
    #: A plain span list — not the Tracer — so results cross the sweep
    #: executor's process-pool boundary.
    trace: Optional[list] = None
    #: Chronological fault-injection log when the trial ran with a
    #: :class:`~repro.faults.FaultPlan` (else None).  Deterministic: two
    #: runs of the same spec produce identical logs.
    fault_log: Optional[list] = None
    #: Exported metrics document (see :mod:`repro.metrics.export`) when
    #: the trial ran with ``RunOptions(metrics=True)`` (else None).
    #: Plain JSON-ready dict, so it crosses the sweep executor's
    #: process-pool boundary and lands in the trial cache.
    metrics: Optional[dict] = None


#: Legacy boolean kwargs already warned about (each warns exactly once).
_LEGACY_WARNED: set = set()


def _warn_legacy(name: str) -> None:
    if name in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(name)
    warnings.warn(
        f"the `{name}` kwarg is deprecated; pass options=RunOptions({name}=...) instead",
        DeprecationWarning,
        stacklevel=4,
    )


def _merge_options(
    options: Optional[RunOptions],
    trace=None,
    collapse=None,
    flow=None,
    faults=None,
    tiers=None,
) -> RunOptions:
    """Fold legacy kwargs into a resolved :class:`RunOptions`.

    Legacy booleans still work (warning once per kwarg name) and take
    explicit-kwarg precedence, matching the documented resolution order.
    """
    legacy = {}
    for name, value in (("trace", trace), ("collapse", collapse), ("flow", flow)):
        if value is not None:
            _warn_legacy(name)
            legacy[name] = bool(value)
    if faults is not None:
        legacy["faults"] = faults
    if tiers is not None:
        _warn_legacy("tiers")
        legacy["tiers"] = tiers
    opts = options if options is not None else RunOptions()
    if legacy:
        opts = replace(opts, **legacy)
    return opts.resolved()


@dataclass
class SweepPoint:
    """Aggregated statistics over trials at one sweep point."""

    impl: str
    n_clients: int
    n_servers: int
    mean: float
    stdev: float
    unit: str
    trials: List[float] = field(default_factory=list)


def _build_lwfs(cluster, n_servers: int, **deploy_kwargs):
    deployment = LWFSDeployment(cluster, n_storage_servers=n_servers, **deploy_kwargs)
    return deployment, LWFSCheckpointer(deployment)


def _build_lustre_fpp(cluster, n_servers: int, **deploy_kwargs):
    deployment = PFSDeployment(cluster, n_osts=n_servers, **deploy_kwargs)
    return deployment, PFSCheckpointer(deployment, mode="file-per-process")


def _build_lustre_shared(cluster, n_servers: int, **deploy_kwargs):
    deployment = PFSDeployment(cluster, n_osts=n_servers, **deploy_kwargs)
    return deployment, PFSCheckpointer(deployment, mode="shared")


#: Implementation registry: each builder returns ``(deployment,
#: checkpointer)`` where the checkpointer implements the
#: :class:`~repro.iolib.api.Checkpointer` interface — everything
#: downstream (harness, sweeps, gates) dispatches on that interface,
#: never on the concrete class.
IMPL_BUILDERS: Dict[str, Callable] = {
    "lwfs": _build_lwfs,
    "lustre-fpp": _build_lustre_fpp,
    "lustre-shared": _build_lustre_shared,
}


def _attach_tier(cluster, deployment, opts: RunOptions, impl: str, n_clients: int):
    """Interpose the burst-buffer tier between checkpointer and servers.

    Returns the replacement checkpointer, or ``None`` for the direct
    path (``tiers`` unset or ``mode: passthrough`` — the kill switch,
    bit-identical to the pre-tier event sequence).  Must run before the
    fault injector is created (so ``buf{i}`` targets resolve) and before
    the collapse plan is computed (so the buffered collapse key is
    used).
    """
    tier = opts.tiers
    if tier is None or not tier.enabled:
        return None
    if impl != "lwfs":
        raise ValueError(
            f"the burst-buffer tier fronts LWFS storage servers; impl {impl!r} "
            "does not support tiers (use mode: passthrough or impl='lwfs')"
        )
    from ..iolib.buffered import BufferedLWFSCheckpointer, HostLogLWFSCheckpointer
    from ..storage.buffer import BufferTierRuntime

    runtime = BufferTierRuntime(cluster, deployment, tier, n_ranks=n_clients)
    cls = HostLogLWFSCheckpointer if tier.mode == "hostlog" else BufferedLWFSCheckpointer
    deployment.buffers = runtime.buffers
    deployment.buffer_tier = runtime
    return cls(deployment, runtime)


def _build(
    impl: str,
    n_clients: int,
    n_servers: int,
    seed: int,
    spec: Optional[MachineSpec] = None,
    config: Optional[SimConfig] = None,
    opts: Optional[RunOptions] = None,
    collapse_state_bytes: int = 0,
    **deploy_kwargs,
):
    opts = opts if opts is not None else RunOptions().resolved()
    spec = spec or dev_cluster()
    config = config or SimConfig()
    config = replace(config, seed=seed)
    if opts.flow:
        config = replace(config, flow=True)
    cluster = SimCluster(
        spec,
        config,
        compute_nodes=min(spec.compute_nodes, max(1, n_clients)),
        io_nodes=spec.io_nodes,
        service_nodes=1,
        options=opts,
    )
    try:
        builder = IMPL_BUILDERS[impl]
    except KeyError:
        raise ValueError(
            f"unknown implementation {impl!r}; expected one of {IMPLEMENTATIONS}"
        ) from None
    deployment, checkpointer = builder(cluster, n_servers, **deploy_kwargs)
    buffered = _attach_tier(cluster, deployment, opts, impl, n_clients)
    if buffered is not None:
        checkpointer = buffered
    injector = None
    if opts.faults is not None:
        from ..faults import FaultInjector

        injector = FaultInjector(cluster, deployment, opts.faults).install()
    plan = None
    if opts.collapse:
        from ..sim.collapse import collapse_plan

        plan = collapse_plan(
            n_clients, lambda r: checkpointer.collapse_key(r, collapse_state_bytes)
        )
    app = ParallelApp(
        cluster.env, cluster.fabric, cluster.compute_nodes, n_ranks=n_clients, collapse=plan
    )
    return cluster, deployment, checkpointer, app, injector


def run_checkpoint_trial(
    impl: str,
    n_clients: int,
    n_servers: int,
    state_bytes: int = PAPER_STATE_BYTES,
    seed: int = 0,
    spec: Optional[MachineSpec] = None,
    config: Optional[SimConfig] = None,
    trace: Optional[bool] = None,
    collapse: Optional[bool] = None,
    flow: Optional[bool] = None,
    tiers=None,
    options: Optional[RunOptions] = None,
    **deploy_kwargs,
) -> TrialResult:
    """One full checkpoint (setup once + one dump), Figure 9 workload.

    Run configuration comes in through ``options=RunOptions(...)``; see
    :class:`~repro.sim.config.RunOptions` for the knobs and the
    kwarg > ``REPRO_*`` env > default resolution order.  The legacy
    ``trace``/``collapse``/``flow`` booleans still work (deprecated,
    warning once per kwarg).

    With ``RunOptions(trace=True)`` a :class:`~repro.trace.Tracer` is
    installed before the run and the completed spans land on
    ``TrialResult.trace`` — tracing never schedules events, so simulated
    timings are bit-identical either way.  ``collapse=True`` simulates
    one representative per symmetric client class
    (:mod:`repro.sim.collapse`); ``flow=True`` rides the fluid flow
    engine (:mod:`repro.network.flow`).  ``faults=FaultPlan(...)``
    installs the fault injector (:mod:`repro.faults`): the fault log
    lands on ``TrialResult.fault_log`` and the recovery counters
    (``retries``, ``recovered_ops``, ``goodput_degraded``, ...) in
    ``TrialResult.extra``.  ``tiers=TierSpec(...)`` (or a JSON path)
    interposes the burst-buffer tier (:mod:`repro.storage.buffer`): the
    dump lands at absorb speed and drains asynchronously; the drain
    tail, goodput, and backpressure land in ``TrialResult.extra``.
    """
    opts = _merge_options(options, trace=trace, collapse=collapse, flow=flow, tiers=tiers)
    if opts.shards > 1:
        from .shard import run_sharded_checkpoint_trial

        return run_sharded_checkpoint_trial(
            impl, n_clients, n_servers, state_bytes=state_bytes, seed=seed,
            spec=spec, config=config, opts=opts, **deploy_kwargs
        )
    cluster, deployment, checkpointer, app, injector = _build(
        impl, n_clients, n_servers, seed, spec, config,
        opts=opts, collapse_state_bytes=state_bytes, **deploy_kwargs
    )
    tracer = _maybe_trace(cluster, opts.trace)
    sampler = _maybe_metrics(
        cluster, deployment, opts, "checkpoint", impl, n_clients, n_servers,
        state_bytes=state_bytes,
    )

    # Under fault injection a checkpoint can abort wholesale (2PC presumed
    # abort wipes the uncommitted creates at a rebooted server); real
    # checkpoint libraries re-drive the dump, so the harness does too.
    attempts = CKPT_ATTEMPTS if injector is not None else 1
    main = checkpoint_main(checkpointer, state_bytes, attempts, injector)
    results = app.run(main)
    max_elapsed = max(r.elapsed for r in results)
    mean_elapsed = sum(r.elapsed for r in results) / len(results)
    # The workload's measured window ends here; the buffer tier keeps
    # draining in the background, so run the drain barrier (and charge
    # its tail) before the injector/sampler close their windows.
    extra = _drain_tier(deployment)
    extra.update(_kernel_stats(cluster))
    extra.update(_collapse_stats(app))
    if injector is not None:
        injector.finish()
        extra.update(injector.stats())
    fault_log = injector.log if injector is not None else None
    metrics_doc = _finish_metrics(sampler, fault_log)
    if sampler is not None:
        extra.update(sampler.stats())
    return TrialResult(
        impl=impl,
        n_clients=n_clients,
        n_servers=n_servers,
        state_bytes=state_bytes,
        max_elapsed=max_elapsed,
        mean_elapsed=mean_elapsed,
        throughput_mb_s=(n_clients * state_bytes / MiB) / max_elapsed,
        create_max_elapsed=max(r.create_elapsed for r in results),
        extra=extra,
        trace=tracer.spans if tracer is not None else None,
        fault_log=fault_log,
        metrics=metrics_doc,
    )


def run_create_trial(
    impl: str,
    n_clients: int,
    n_servers: int,
    creates_per_client: int = 32,
    seed: int = 0,
    spec: Optional[MachineSpec] = None,
    config: Optional[SimConfig] = None,
    trace: Optional[bool] = None,
    collapse: Optional[bool] = None,
    flow: Optional[bool] = None,
    tiers=None,
    options: Optional[RunOptions] = None,
    **deploy_kwargs,
) -> TrialResult:
    """Create-only phase (Figure 10 workload): empty objects/files.

    Accepts the same ``options=RunOptions(...)`` configuration (and the
    same deprecated legacy booleans) as :func:`run_checkpoint_trial`.
    """
    opts = _merge_options(options, trace=trace, collapse=collapse, flow=flow, tiers=tiers)
    if opts.shards > 1:
        from .shard import run_sharded_create_trial

        return run_sharded_create_trial(
            impl, n_clients, n_servers, creates_per_client=creates_per_client,
            seed=seed, spec=spec, config=config, opts=opts, **deploy_kwargs
        )
    cluster, deployment, checkpointer, app, injector = _build(
        impl, n_clients, n_servers, seed, spec, config, opts=opts, **deploy_kwargs
    )
    tracer = _maybe_trace(cluster, opts.trace)
    sampler = _maybe_metrics(
        cluster, deployment, opts, "create", impl, n_clients, n_servers,
        creates_per_client=creates_per_client,
    )
    main = create_main(checkpointer, creates_per_client)
    results = app.run(main)
    max_elapsed = max(r.elapsed for r in results)
    total_creates = n_clients * creates_per_client
    extra = _drain_tier(deployment)
    extra.update(_kernel_stats(cluster))
    extra.update(_collapse_stats(app))
    extra["creates_per_s"] = total_creates / max_elapsed
    if injector is not None:
        injector.finish()
        extra.update(injector.stats())
    fault_log = injector.log if injector is not None else None
    metrics_doc = _finish_metrics(sampler, fault_log)
    if sampler is not None:
        extra.update(sampler.stats())
    return TrialResult(
        impl=impl,
        n_clients=n_clients,
        n_servers=n_servers,
        state_bytes=0,
        max_elapsed=max_elapsed,
        mean_elapsed=sum(r.elapsed for r in results) / len(results),
        throughput_mb_s=0.0,
        extra=extra,
        trace=tracer.spans if tracer is not None else None,
        fault_log=fault_log,
        metrics=metrics_doc,
    )


def checkpoint_main(checkpointer, state_bytes: int, attempts: int = 1, injector=None):
    """The per-rank checkpoint program (Figure 9 workload).

    Module-level (rather than a closure inside the trial function) so
    the sharded driver (:mod:`repro.bench.shard`) runs the identical
    program inside each worker process.

    Under fault injection a checkpoint can abort wholesale (2PC presumed
    abort wipes the uncommitted creates at a rebooted server); real
    checkpoint libraries re-drive the dump, so the harness does too.
    All ranks observe the collective outcome, so the retry loop stays
    aligned without extra synchronization.
    """

    def main(ctx):
        yield from checkpointer.setup(ctx)
        yield from ctx.barrier()
        for attempt in range(1, attempts + 1):
            try:
                result = yield from checkpointer.checkpoint(
                    ctx, SyntheticData(state_bytes, seed=ctx.rank)
                )
                return result
            except CheckpointError:
                if attempt == attempts:
                    raise
                if ctx.rank == 0:
                    injector.note_ckpt_restart()
                # A revocation storm fails writes closed; re-acquiring
                # capabilities (fresh serials) is part of the re-drive.
                refresh = getattr(checkpointer, "refresh_caps", None)
                if refresh is not None:
                    yield from refresh(ctx)

    return main


def create_main(checkpointer, creates_per_client: int):
    """The per-rank create-phase program (Figure 10 workload)."""

    def main(ctx):
        yield from checkpointer.setup(ctx)
        yield from ctx.barrier()
        result = yield from checkpointer.create_objects(ctx, creates_per_client)
        return result

    return main


def _maybe_trace(cluster, trace: bool):
    if not trace:
        return None
    from ..trace import Tracer

    return Tracer.install(cluster.env)


def _maybe_metrics(
    cluster,
    deployment,
    opts: RunOptions,
    kind: str,
    impl: str,
    n_clients: int,
    n_servers: int,
    state_bytes: int = 0,
    creates_per_client: int = 1,
):
    """Install the metrics registry + sampler when the trial opts in.

    The sampling period is ``opts.metrics_period`` when explicit, else
    derived from the analytic horizon — a model quantity, so serial,
    process-pool, and sharded executions of one spec land on the same
    grid.  Must run after :func:`_build` (the injector is already on
    ``env.faults``, so the fault-pressure gauges see it) and before the
    workload launches (``t0`` anchors the grid at setup time).
    """
    if not opts.metrics:
        return None
    from ..metrics import (
        MetricsRegistry,
        Sampler,
        default_period,
        install_standard_instruments,
    )
    from .analytic import analytic_horizon

    period = opts.metrics_period
    if period is None:
        horizon = analytic_horizon(
            kind, impl, n_clients, n_servers, cluster.spec, cluster.config,
            state_bytes, creates_per_client,
        )
        period = default_period(horizon)
    registry = MetricsRegistry.install(cluster.env)
    install_standard_instruments(registry, cluster, deployment)
    return Sampler(registry, period).start()


def _finish_metrics(sampler, fault_log: Optional[list]) -> Optional[dict]:
    """Close the sampler and export the trial's metrics document."""
    if sampler is None:
        return None
    from ..metrics import build_doc, evaluate_health

    sampler.finish()
    doc = build_doc(sampler.registry, sampler)
    doc["health"] = evaluate_health(doc, fault_log=fault_log).to_dict()
    return doc


def _drain_tier(deployment) -> Dict[str, float]:
    """Run the buffer tier's drain barrier and collect its stats.

    No-op (empty dict) on the direct path; the dict shape matches
    ``TrialResult.extra`` (plain floats, process-pool safe).
    """
    runtime = getattr(deployment, "buffer_tier", None)
    if runtime is None:
        return {}
    return runtime.finish()


def _kernel_stats(cluster) -> Dict[str, float]:
    """Deterministic event-loop stats for one finished trial."""
    from ..trace.stats import kernel_stats

    return {k: float(v) for k, v in kernel_stats(cluster.env).items()}


def _collapse_stats(app) -> Dict[str, float]:
    """Collapse-plan summary for the trial record (empty when exact)."""
    if not app.collapse:
        return {}
    mults = [ctx.multiplicity for ctx in app.contexts]
    return {
        "ranks_simulated": float(len(mults)),
        "max_multiplicity": float(max(mults)),
    }


def _aggregate(impl, n_clients, n_servers, values: List[float], unit: str) -> SweepPoint:
    if not values:
        raise ValueError(
            f"cannot aggregate an empty trials list for "
            f"({impl}, clients={n_clients}, servers={n_servers})"
        )
    mean = sum(values) / len(values)
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1) if len(values) > 1 else 0.0
    return SweepPoint(
        impl=impl,
        n_clients=n_clients,
        n_servers=n_servers,
        mean=mean,
        stdev=math.sqrt(var),
        unit=unit,
        trials=values,
    )


def measure_point(
    impl: str,
    n_clients: int,
    n_servers: int,
    trials: int = 3,
    state_bytes: int = PAPER_STATE_BYTES,
    base_seed: int = 100,
    jobs: Optional[int] = 1,
    **kwargs,
) -> SweepPoint:
    """Dump-phase throughput (MB/s) averaged over *trials* runs.

    ``jobs`` fans the trials out over worker processes (see
    :mod:`repro.bench.executor`); the default of 1 keeps a single point
    in-process.  Results are bit-identical either way.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    from .executor import checkpoint_spec, run_trials

    specs = [
        checkpoint_spec(
            impl, n_clients, n_servers, seed=base_seed + t, state_bytes=state_bytes, **kwargs
        )
        for t in range(trials)
    ]
    values = [o.value for o in run_trials(specs, jobs=jobs)]
    return _aggregate(impl, n_clients, n_servers, values, "MB/s")


def measure_create_point(
    impl: str,
    n_clients: int,
    n_servers: int,
    trials: int = 3,
    creates_per_client: int = 32,
    base_seed: int = 200,
    jobs: Optional[int] = 1,
    **kwargs,
) -> SweepPoint:
    """Create-phase throughput (ops/s) averaged over *trials* runs."""
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    from .executor import create_spec, run_trials

    specs = [
        create_spec(
            impl,
            n_clients,
            n_servers,
            seed=base_seed + t,
            creates_per_client=creates_per_client,
            **kwargs,
        )
        for t in range(trials)
    ]
    values = [o.value for o in run_trials(specs, jobs=jobs)]
    return _aggregate(impl, n_clients, n_servers, values, "ops/s")
