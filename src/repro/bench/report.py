"""Result formatting and persistence for the benchmark harness.

Benchmarks print the paper's series as ASCII tables (one row per sweep
point, one column per server count — the same series the figures plot)
and drop machine-readable JSON under ``results/`` so EXPERIMENTS.md can
cite exact numbers.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence

from ..sim.config import env_str
from .harness import SweepPoint

__all__ = ["format_series_table", "format_rows", "save_json", "results_dir"]


def results_dir() -> str:
    """The repository's results directory (created on demand)."""
    root = env_str("REPRO_RESULTS_DIR") or None
    if root is None:
        here = os.path.dirname(os.path.abspath(__file__))
        root = os.path.normpath(os.path.join(here, "..", "..", "..", "results"))
    os.makedirs(root, exist_ok=True)
    return root


def format_series_table(
    title: str,
    points: Sequence[SweepPoint],
    value: str = "mean",
) -> str:
    """Render a sweep as clients-by-servers table (one figure panel)."""
    clients = sorted({p.n_clients for p in points})
    servers = sorted({p.n_servers for p in points})
    unit = points[0].unit if points else ""
    by_key: Dict[tuple, SweepPoint] = {(p.n_clients, p.n_servers): p for p in points}

    header = ["clients"] + [f"{m} servers" for m in servers]
    rows: List[List[str]] = []
    for n in clients:
        row = [str(n)]
        for m in servers:
            p = by_key.get((n, m))
            if p is None:
                row.append("-")
            elif value == "mean":
                row.append(f"{p.mean:.1f} ±{p.stdev:.1f}")
            else:
                row.append(f"{getattr(p, value):.1f}")
        rows.append(row)

    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) for i in range(len(header))]
    lines = [f"== {title} ({unit}) =="]
    lines.append("  ".join(h.rjust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_rows(title: str, rows: Iterable[dict]) -> str:
    """Render a list of homogeneous dicts as an aligned table."""
    rows = list(rows)
    if not rows:
        return f"== {title} ==\n(no rows)"
    cols = list(rows[0])
    cells = [[_fmt(r.get(c)) for c in cols] for r in rows]
    widths = [max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)]
    lines = [f"== {title} =="]
    lines.append("  ".join(c.rjust(widths[i]) for i, c in enumerate(cols)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def save_json(name: str, payload) -> str:
    """Write *payload* to ``results/<name>.json``; returns the path."""
    path = os.path.join(results_dir(), f"{name}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=_jsonify)
    return path


def _jsonify(obj):
    if isinstance(obj, SweepPoint):
        return {
            "impl": obj.impl,
            "n_clients": obj.n_clients,
            "n_servers": obj.n_servers,
            "mean": obj.mean,
            "stdev": obj.stdev,
            "unit": obj.unit,
            "trials": obj.trials,
        }
    if hasattr(obj, "__dict__"):
        return obj.__dict__
    raise TypeError(f"cannot serialize {type(obj).__name__}")
