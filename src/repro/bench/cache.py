"""Persistent content-addressed trial cache for incremental sweeps.

Every benchmark trial is a deterministic function of its spec — same
implementation, grid point, seed, parameters, simulator version, and
fast-path switches always produce bit-identical figures of merit.  That
makes re-running an unchanged trial pure waste: a sweep edited to add one
server count re-simulates every point it already measured.

This module gives :mod:`repro.bench.executor` a persistent cache keyed by
a SHA-256 over the trial's full identity.  Warm entries skip simulation
entirely; anything that could change a result — the ``repro`` version,
the kernel/fabric fast-path env switches, any trial parameter — is part
of the key, so stale hits are impossible by construction rather than by
invalidation logic.

Layout: one small JSON file per trial under ``results/.trial-cache/``
(first two hex chars shard the directory).  Escape hatches:

* ``--no-cache`` on the sweep CLIs,
* ``REPRO_BENCH_CACHE=0`` in the environment,
* ``REPRO_BENCH_CACHE_DIR`` to relocate the store (tests use a tmpdir).

Traced trials (``trace=True``) are never cached: span lists are large,
and the trace is the product the caller wants, not the scalar.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Any, Dict, Optional

from .._version import __version__
from ..sim.config import RunOptions, env_str

__all__ = ["CACHE_SCHEMA", "TrialCache", "cache_enabled", "default_cache_dir", "trial_key"]

#: Schema marker written into every cache entry; bump to invalidate.
#: v3: accelerator switches (REPRO_FASTFORWARD / REPRO_SHARD) joined the
#: key and ``peak_event_queue`` changed meaning (live depth under lazy
#: cancellation), so v2 entries are stale by construction.
#: v4: the metrics knobs (REPRO_METRICS / REPRO_METRICS_PERIOD) joined
#: the key via ``RunOptions.describe()`` and outcome payloads grew the
#: metrics document + summary, so v3 entries are stale by construction.
#: v5: open-loop workload trials joined the executor — the workload
#: spec's content signature and the tenant-collapse knob (plus its raw
#: ``REPRO_TENANT_COLLAPSE`` kill switch) are part of the key, and
#: outcome payloads grew tenants_simulated / max_class_multiplicity and
#: per-tenant-class latency rows, so v4 entries are stale by construction.
#: v6: the burst-buffer tier spec (REPRO_TIERS) joined the key — its
#: resolved content signature rides ``RunOptions.describe()`` — and
#: buffered trials grew the buffer_* drain stats in ``extra``, so v5
#: entries are stale by construction.
CACHE_SCHEMA = "repro-trial-cache/v6"


def cache_enabled() -> bool:
    """``False`` when ``REPRO_BENCH_CACHE=0`` opts the process out."""
    return env_str("REPRO_BENCH_CACHE", "1") != "0"


def default_cache_dir() -> str:
    """``results/.trial-cache`` at the repo root (``REPRO_BENCH_CACHE_DIR``)."""
    override = env_str("REPRO_BENCH_CACHE_DIR")
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(os.path.join(here, "..", "..", "..", "results", ".trial-cache"))


def _canonical(value: Any) -> Any:
    """A JSON-stable stand-in for *value*.

    Plain JSON types pass through; everything else (MachineSpec,
    SimConfig, ...) contributes its ``repr`` — dataclass reprs list every
    field deterministically, so two configs hash alike iff they are equal.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    return repr(value)


def _resolved_options(spec) -> RunOptions:
    """The trial's effective :class:`RunOptions`, legacy kwargs folded in.

    Mirrors ``repro.bench.harness._merge_options`` (minus the deprecation
    warnings — the harness owns those) so the cache key sees exactly the
    configuration the trial will run under, environment resolution
    included.
    """
    from dataclasses import replace

    opts = spec.params.get("options")
    if not isinstance(opts, RunOptions):
        opts = RunOptions()
    legacy = {
        name: bool(spec.params[name])
        for name in ("trace", "collapse", "flow")
        if spec.params.get(name) is not None
    }
    if spec.params.get("faults") is not None:
        legacy["faults"] = spec.params["faults"]
    if spec.params.get("tiers") is not None:
        legacy["tiers"] = spec.params["tiers"]
    if legacy:
        opts = replace(opts, **legacy)
    return opts.resolved()


def trial_key(spec) -> str:
    """SHA-256 identity of one trial: spec + version + resolved options."""
    doc = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "kind": spec.kind,
        "impl": spec.impl,
        "n_clients": spec.n_clients,
        "n_servers": spec.n_servers,
        "seed": spec.seed,
        "params": _canonical(spec.params),
        # The full resolved RunOptions (including the fault plan's content
        # hash): a cached fault-free outcome can never answer for a
        # fault-injected spec, and fast paths stay out of each other's
        # cache lines so a regression can never masquerade as a hit.
        "options": _resolved_options(spec).describe(),
        # Kill switches beat even explicit options, so their raw values
        # are part of the identity too.
        "fastpath": env_str("REPRO_FABRIC_FASTPATH", "1"),
        "lazy": env_str("REPRO_KERNEL_LAZY", "1"),
        "flow": env_str("REPRO_FLOW", ""),
        "fastforward": env_str("REPRO_FASTFORWARD", ""),
        "shard": env_str("REPRO_SHARD", ""),
        "tenant_collapse": env_str("REPRO_TENANT_COLLAPSE", ""),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TrialCache:
    """Content-addressed store of finished trial outcomes."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root or default_cache_dir()

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".json")

    @staticmethod
    def cacheable(spec) -> bool:
        """Whether this trial's outcome may come from / go to the store.

        Traced trials carry their span list as the product: never cache.
        Fault-injected trials carry their fault log the same way (and the
        caller is usually studying recovery dynamics, not the scalar), so
        they always simulate.  ``RunOptions(cache=False)`` opts a single
        spec out explicitly.  Metered trials (``metrics=True``) DO cache:
        the exported document is a few KiB of series on a deterministic
        grid, and the metrics knobs are part of the key, so a metered and
        an unmetered run of one spec live on different cache lines.
        """
        opts = _resolved_options(spec)
        if opts.trace or opts.faults is not None:
            return False
        return bool(opts.cache)

    def get(self, spec) -> Optional[Dict[str, Any]]:
        """The stored outcome payload for *spec*, or ``None`` on a miss."""
        if not self.cacheable(spec):
            return None
        try:
            with open(self._path(trial_key(spec)), encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            return None
        if not isinstance(doc, dict) or doc.get("schema") != CACHE_SCHEMA:
            return None
        outcome = doc.get("outcome")
        return outcome if isinstance(outcome, dict) else None

    def put(self, spec, outcome: Dict[str, Any]) -> None:
        """Persist *outcome* for *spec* (atomic rename; failures are soft)."""
        if not self.cacheable(spec):
            return
        key = trial_key(spec)
        path = self._path(key)
        doc = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "key": spec.key(),
            "outcome": outcome,
        }
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(doc, fh, separators=(",", ":"))
                    fh.write("\n")
                os.replace(tmp, path)
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError:  # pragma: no cover - read-only checkout etc.
            pass
