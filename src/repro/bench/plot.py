"""ASCII rendering of the paper's figures.

No plotting stack is assumed (the target environment is offline); these
charts draw the Fig. 9/10 series as terminal line plots so the *shape* —
the thing the reproduction is about — is visible at a glance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from .harness import SweepPoint

__all__ = ["ascii_chart", "chart_sweep"]

#: Series glyphs, one per server count (matches the paper's four series).
GLYPHS = "ox*#@+%&"


def ascii_chart(
    series: Dict[str, List[tuple]],
    title: str = "",
    width: int = 64,
    height: int = 18,
    y_label: str = "",
    x_label: str = "",
    log_y: bool = False,
) -> str:
    """Render named series of (x, y) pairs as an ASCII line chart."""
    import math

    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if log_y:
        y_min = max(y_min, 1e-12)
        transform = math.log10
    else:
        y_min = min(0.0, y_min)
        transform = float
    ty_min, ty_max = transform(max(y_min, 1e-12) if log_y else y_min), transform(y_max)
    if ty_max == ty_min:
        ty_max = ty_min + 1.0
    if x_max == x_min:
        x_max = x_min + 1

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, glyph: str) -> None:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((transform(max(y, 1e-12) if log_y else y) - ty_min) / (ty_max - ty_min) * (height - 1))
        grid[height - 1 - row][col] = glyph

    legend = []
    for i, (name, pts) in enumerate(series.items()):
        glyph = GLYPHS[i % len(GLYPHS)]
        legend.append(f"{glyph}={name}")
        for x, y in sorted(pts):
            plot(x, y, glyph)

    lines = []
    if title:
        lines.append(title)
    scale = "log" if log_y else "linear"
    top_label = f"{y_max:,.0f}" if y_max >= 10 else f"{y_max:.3g}"
    bot_label = f"{y_min:,.0f}" if abs(y_min) >= 10 else f"{y_min:.3g}"
    lines.append(f"{top_label:>10} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{bot_label:>10} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{x_min:<10g}{x_label.center(max(0, width - 20))}{x_max:>10g}"
    )
    lines.append(" " * 12 + f"[{scale} y: {y_label}]  " + "  ".join(legend))
    return "\n".join(lines)


def chart_sweep(
    points: Sequence[SweepPoint],
    title: str,
    log_y: bool = False,
    width: int = 64,
    height: int = 18,
) -> str:
    """Chart a Fig. 9/10-style sweep: one series per server count."""
    series: Dict[str, List[tuple]] = {}
    for p in sorted(points, key=lambda p: (p.n_servers, p.n_clients)):
        series.setdefault(f"{p.n_servers} servers", []).append((p.n_clients, p.mean))
    unit = points[0].unit if points else ""
    return ascii_chart(
        series,
        title=title,
        width=width,
        height=height,
        y_label=unit,
        x_label="clients",
        log_y=log_y,
    )
